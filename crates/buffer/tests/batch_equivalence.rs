//! Equivalence proptests for the batch-granular buffer API.
//!
//! `put_many` / `get_batch` / `get_batch_with` must be *observationally
//! identical* to the sample-at-a-time `put` / `get` loops they replace: same
//! served sequence (hence the same RNG stream for the randomised policies),
//! same population trajectory, same instrumentation counters and the same
//! drain/termination behaviour. Randomised interleavings of insert and
//! extract chunks are replayed against two identically seeded buffers, one
//! driven sequentially and one driven batch-wise, and every intermediate
//! observation is compared.
//!
//! Exception: the Reservoir's batch serving draws the versioned per-batch
//! stream "reservoir-draw-v2" (one RNG draw per batch, SplitMix64-expanded),
//! so batch-vs-sequential *bit* equivalence is retired for it. Its batch path
//! is still pinned two ways: `get_batch` ≡ `get_batch_with` below, and the
//! stream-derivation regression in `crates/buffer/src/reservoir.rs`.

use proptest::prelude::*;
use training_buffer::{build_buffer, BufferConfig, BufferKind, BufferStats};

/// How the schedule drives the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// One `put`/`get` call per sample (the seed-style reference).
    Sequential,
    /// One `put_many`/`get_batch` call per chunk.
    Batched,
    /// `put_many` plus the borrow-based `get_batch_with` visitor.
    Visited,
}

/// One observation point: served samples so far, population and counters.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Trace {
    served: Vec<u32>,
    populations: Vec<usize>,
    stats: BufferStats,
}

/// Replays `ops` (alternating put/get chunk intents) against a fresh buffer.
/// Chunk sizes are clamped so no call can block — the clamping only looks at
/// the population and the configured threshold/capacity, so it is identical
/// across modes as long as the population trajectories agree (which is
/// exactly what the test asserts).
fn run_schedule(config: &BufferConfig, ops: &[(bool, usize)], mode: Mode) -> Trace {
    let buffer = build_buffer::<u32>(config);
    let buffer = buffer.as_ref();
    let mut served: Vec<u32> = Vec::new();
    let mut populations = Vec::new();
    let mut next_value = 0u32;
    for &(is_put, amount) in ops {
        if is_put {
            // Never block: `put` waits only when the buffer is full — for the
            // Reservoir, when the *unseen* side is full (the unseen population
            // is recoverable from the counters pre-drain: every put inserts an
            // unseen sample and every first serve moves one to the seen side),
            // so insertion beyond the total capacity still proceeds there by
            // evicting seen samples, which keeps the eviction draws exercised.
            let room = match config.kind {
                BufferKind::Reservoir => {
                    let stats = buffer.stats();
                    let unseen = stats.puts - (stats.gets - stats.repeated_gets);
                    config.capacity - unseen
                }
                _ => config.capacity - buffer.len(),
            };
            let k = amount.min(room);
            let chunk: Vec<u32> = (next_value..next_value + k as u32).collect();
            next_value += k as u32;
            match mode {
                Mode::Sequential => {
                    for v in chunk {
                        buffer.put(v);
                    }
                }
                Mode::Batched | Mode::Visited => {
                    let mut chunk = chunk;
                    buffer.put_many(&mut chunk);
                    assert!(chunk.is_empty(), "put_many must drain its scratch");
                }
            }
        } else {
            // Never cross the blocking threshold mid-batch: each extraction
            // requires population > threshold and may shrink the population by
            // one (FIFO/FIRO). The Reservoir never shrinks pre-drain, so any
            // batch size is servable once it is past the threshold — including
            // batches larger than the population, which pins the repeats.
            let servable = match config.kind {
                BufferKind::Reservoir => {
                    if buffer.len() > config.threshold {
                        amount
                    } else {
                        0
                    }
                }
                _ => buffer.len().saturating_sub(config.threshold),
            };
            let k = amount.min(servable);
            match mode {
                Mode::Sequential => {
                    for _ in 0..k {
                        served.push(buffer.get().expect("reception is not over"));
                    }
                }
                Mode::Batched => {
                    let got = buffer.get_batch(k, &mut served);
                    assert_eq!(got, k, "nothing may end a pre-drain batch early");
                }
                Mode::Visited => {
                    let got = buffer.get_batch_with(k, &mut |v| served.push(*v));
                    assert_eq!(got, k, "nothing may end a pre-drain batch early");
                }
            }
        }
        populations.push(buffer.len());
    }

    // Drain: after the end of reception every policy serves what is stored and
    // then terminates (`get` -> None, `get_batch` -> 0).
    buffer.mark_reception_over();
    match mode {
        Mode::Sequential => {
            while let Some(v) = buffer.get() {
                served.push(v);
            }
            assert!(buffer.get().is_none(), "termination must be stable");
        }
        Mode::Batched => {
            while buffer.get_batch(3, &mut served) > 0 {}
            assert_eq!(buffer.get_batch(3, &mut served), 0);
        }
        Mode::Visited => {
            while buffer.get_batch_with(3, &mut |v| served.push(*v)) > 0 {}
            assert_eq!(buffer.get_batch_with(3, &mut |_| ()), 0);
        }
    }
    populations.push(buffer.len());

    Trace {
        served,
        populations,
        stats: buffer.stats(),
    }
}

/// Strips the wait counters: blocking never happens under the clamped
/// schedules, but the batched implementations are allowed to count waits
/// differently if a future schedule reintroduces them.
fn comparable(stats: &BufferStats) -> BufferStats {
    BufferStats {
        producer_waits: 0,
        consumer_waits: 0,
        ..*stats
    }
}

fn schedule_strategy() -> impl Strategy<Value = Vec<(bool, usize)>> {
    // (is_put, chunk size in 1..=23) packed into one integer — the vendored
    // proptest has no tuple strategies.
    proptest::collection::vec(0usize..46, 1..40)
        .prop_map(|raw| raw.into_iter().map(|v| (v % 2 == 0, v / 2 + 1)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The batched entry points replay the sequential behaviour exactly for
    /// the deterministic-drain policies: served sequence (which pins the RNG
    /// stream), population trajectory, counters and drain behaviour. The
    /// Reservoir is deliberately absent — its batch serving owns the
    /// versioned "reservoir-draw-v2" stream and diverges from sequential
    /// `get`s by design (see the module docs).
    #[test]
    fn batched_ops_are_observationally_identical(
        capacity in 2usize..48,
        ops in schedule_strategy(),
        seed in 0u64..500,
    ) {
        let threshold = capacity / 3;
        for kind in [BufferKind::Fifo, BufferKind::Firo] {
            let config = BufferConfig { kind, capacity, threshold, seed };
            let sequential = run_schedule(&config, &ops, Mode::Sequential);
            let batched = run_schedule(&config, &ops, Mode::Batched);
            prop_assert_eq!(&sequential.served, &batched.served,
                "{:?}: get_batch diverged from sequential gets", kind);
            prop_assert_eq!(&sequential.populations, &batched.populations,
                "{:?}: population trajectory diverged", kind);
            prop_assert_eq!(comparable(&sequential.stats), comparable(&batched.stats),
                "{:?}: counters diverged", kind);
        }
    }

    /// The borrow-based visitor serves the identical stream without handing
    /// out ownership, for every policy.
    #[test]
    fn visitor_path_matches_owned_path(
        capacity in 2usize..48,
        ops in schedule_strategy(),
        seed in 0u64..500,
    ) {
        let threshold = capacity / 3;
        for kind in BufferKind::ALL {
            let config = BufferConfig { kind, capacity, threshold, seed };
            let batched = run_schedule(&config, &ops, Mode::Batched);
            let visited = run_schedule(&config, &ops, Mode::Visited);
            prop_assert_eq!(&batched.served, &visited.served,
                "{:?}: get_batch_with diverged from get_batch", kind);
            prop_assert_eq!(&batched.populations, &visited.populations,
                "{:?}: population trajectory diverged", kind);
            prop_assert_eq!(comparable(&batched.stats), comparable(&visited.stats),
                "{:?}: counters diverged", kind);
        }
    }

    /// Mixed-mode runs agree too: producing with `put_many` while consuming
    /// sample-at-a-time (and vice versa) must not change anything — the
    /// batched calls are pure lock-granularity optimisations.
    #[test]
    fn mixed_batched_and_sequential_sides_agree(
        capacity in 2usize..32,
        n_items in 1usize..80,
        chunk in 1usize..9,
        seed in 0u64..200,
    ) {
        let threshold = capacity / 3;
        for kind in BufferKind::ALL {
            let config = BufferConfig { kind, capacity, threshold, seed };
            // Reference: fully sequential.
            let feed: Vec<u32> = (0..n_items as u32).collect();
            let reference = {
                let buffer = build_buffer::<u32>(&config);
                let mut served = Vec::new();
                for &v in &feed {
                    if buffer.len() >= capacity {
                        served.push(buffer.get().unwrap());
                    }
                    buffer.put(v);
                }
                buffer.mark_reception_over();
                while let Some(v) = buffer.get() {
                    served.push(v);
                }
                served
            };
            // Mixed: batched producer, sequential consumer.
            let mixed = {
                let buffer = build_buffer::<u32>(&config);
                let mut served = Vec::new();
                for group in feed.chunks(chunk) {
                    for &v in group {
                        if buffer.len() >= capacity {
                            served.push(buffer.get().unwrap());
                        }
                        let mut one = vec![v];
                        buffer.put_many(&mut one);
                    }
                }
                buffer.mark_reception_over();
                while let Some(v) = buffer.get() {
                    served.push(v);
                }
                served
            };
            prop_assert_eq!(&reference, &mixed, "{:?}: mixed-mode run diverged", kind);
        }
    }
}
