//! Property-based tests of the training buffers (proptest).
//!
//! These check the structural invariants of §3.2.3 and the residency-time
//! result of Appendix A over randomly generated workloads.

use proptest::prelude::*;
use training_buffer::{
    BufferConfig, BufferKind, FifoBuffer, FiroBuffer, ReservoirBuffer, ReservoirSampler,
    TrainingBuffer,
};

/// Drives a buffer with an interleaved put/get schedule and returns the served
/// items and the maximum observed population.
fn drive(buffer: &dyn TrainingBuffer<u32>, items: &[u32], get_every: usize) -> (Vec<u32>, usize) {
    let mut served = Vec::new();
    let mut max_pop = 0;
    for (k, &item) in items.iter().enumerate() {
        // Both sides run on this single thread, so never let `put` block: when
        // the population is at capacity, consume one sample first (for the
        // Reservoir this frees an unseen slot because a full buffer with a full
        // unseen side has no seen samples to select).
        if buffer.len() >= buffer.capacity() {
            if let Some(v) = buffer.get() {
                served.push(v);
            }
        }
        buffer.put(item);
        max_pop = max_pop.max(buffer.len());
        if get_every > 0 && k % get_every == 0 && buffer.len() > buffer.capacity() / 2 {
            if let Some(v) = buffer.get() {
                served.push(v);
            }
        }
    }
    buffer.mark_reception_over();
    while let Some(v) = buffer.get() {
        served.push(v);
        if served.len() > items.len() * 20 {
            break; // safety net; the drain must terminate long before this
        }
    }
    (served, max_pop)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No buffer ever stores more samples than its capacity.
    #[test]
    fn population_never_exceeds_capacity(
        capacity in 2usize..64,
        n_items in 1usize..300,
        get_every in 1usize..8,
        seed in 0u64..1000,
    ) {
        let threshold = capacity / 4;
        let items: Vec<u32> = (0..n_items as u32).collect();
        for kind in BufferKind::ALL {
            let config = BufferConfig { kind, capacity, threshold, seed };
            let buffer = training_buffer::build_buffer::<u32>(&config);
            let (_, max_pop) = drive(buffer.as_ref(), &items, get_every);
            prop_assert!(max_pop <= capacity, "{kind:?}: max population {max_pop} > capacity {capacity}");
        }
    }

    /// FIFO and FIRO serve every produced sample exactly once.
    #[test]
    fn fifo_and_firo_serve_each_sample_once(
        capacity in 2usize..64,
        n_items in 1usize..300,
        get_every in 1usize..8,
        seed in 0u64..1000,
    ) {
        let items: Vec<u32> = (0..n_items as u32).collect();
        for kind in [BufferKind::Fifo, BufferKind::Firo] {
            let config = BufferConfig { kind, capacity, threshold: capacity / 4, seed };
            let buffer = training_buffer::build_buffer::<u32>(&config);
            let (mut served, _) = drive(buffer.as_ref(), &items, get_every);
            served.sort_unstable();
            prop_assert_eq!(&served, &items, "{:?} lost or duplicated samples", kind);
        }
    }

    /// The Reservoir serves every produced sample at least once (unseen data is
    /// never discarded) and the number of distinct served samples equals the
    /// number of produced samples.
    #[test]
    fn reservoir_never_loses_unseen_data(
        capacity in 2usize..64,
        n_items in 1usize..300,
        get_every in 1usize..8,
        seed in 0u64..1000,
    ) {
        let items: Vec<u32> = (0..n_items as u32).collect();
        let buffer = ReservoirBuffer::new(capacity, capacity / 4, seed);
        let (served, _) = drive(&buffer, &items, get_every);
        let mut distinct: Vec<u32> = served.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(&distinct, &items, "some produced samples were never served");
        prop_assert!(served.len() >= items.len());
        let stats = buffer.stats();
        prop_assert_eq!(stats.gets, served.len());
        prop_assert_eq!(stats.gets - stats.repeated_gets, items.len());
    }

    /// FIFO preserves arrival order.
    #[test]
    fn fifo_preserves_order(n_items in 1usize..200, capacity in 1usize..32) {
        let buffer = FifoBuffer::new(capacity.max(1));
        let items: Vec<u32> = (0..n_items as u32).collect();
        let mut served = Vec::new();
        for &i in &items {
            buffer.put(i);
            // Keep the buffer from filling by consuming aggressively.
            if buffer.len() == buffer.capacity() {
                served.push(buffer.get().unwrap());
            }
        }
        buffer.mark_reception_over();
        while let Some(v) = buffer.get() {
            served.push(v);
        }
        prop_assert_eq!(served, items);
    }

    /// FIRO with the threshold lifted is a permutation of the input.
    #[test]
    fn firo_is_a_permutation(n_items in 1usize..200, seed in 0u64..500) {
        let buffer = FiroBuffer::new(512, 0, seed);
        let items: Vec<u32> = (0..n_items as u32).collect();
        for &i in &items {
            buffer.put(i);
        }
        buffer.mark_reception_over();
        let mut served = Vec::new();
        while let Some(v) = buffer.get() {
            served.push(v);
        }
        served.sort_unstable();
        prop_assert_eq!(served, items);
    }

    /// Classic reservoir sampling holds min(capacity, offered) items and wastes
    /// the rest of the stream.
    #[test]
    fn reservoir_sampler_size_invariant(capacity in 1usize..64, n_items in 0usize..500, seed in 0u64..100) {
        let mut sampler = ReservoirSampler::new(capacity, seed);
        for k in 0..n_items as u32 {
            sampler.offer(k);
        }
        prop_assert_eq!(sampler.items().len(), capacity.min(n_items));
        prop_assert_eq!(sampler.offered(), n_items);
        prop_assert!(sampler.wasted() <= n_items.saturating_sub(capacity));
    }
}

/// Appendix A: with random-overwrite insertion into a full container of size n,
/// the expected residency time of an item is n − 1 insertions.
#[test]
fn residency_time_matches_appendix_a() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let n = 50usize;
    let insertions = 400_000usize;
    // container holds the insertion index of the element occupying each slot.
    let mut container: Vec<usize> = (0..n).collect();
    let mut total_residency = 0usize;
    let mut evicted = 0usize;
    for step in n..n + insertions {
        let slot = rng.gen_range(0..n);
        let inserted_at = container[slot];
        if inserted_at >= n {
            // Only count items inserted after warm-up.
            total_residency += step - inserted_at;
            evicted += 1;
        }
        container[slot] = step;
    }
    let mean = total_residency as f64 / evicted as f64;
    let expected = (n - 1) as f64;
    let relative_error = (mean - expected).abs() / expected;
    assert!(
        relative_error < 0.05,
        "mean residency {mean:.2} vs expected {expected} (err {relative_error:.3})"
    );
}
