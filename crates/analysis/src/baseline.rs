//! The ratcheting baseline: `analysis/baseline.toml` enumerates every
//! tolerated pre-existing violation, and its per-rule counts are a
//! high-water mark that may only go down.
//!
//! * findings that match a baseline entry are **tolerated**;
//! * findings without an entry are **new** and fail `check --deny`;
//! * entries without a finding are **stale** — the code improved, and
//!   `ratchet` must be run to shrink the baseline (also enforced by
//!   `--deny`, so the ratchet can never silently slacken).
//!
//! Entries are matched by a line-number-free fingerprint
//! (`file::function::detail#ordinal`), so unrelated edits that shift lines
//! do not churn the baseline.

use crate::rules::{Finding, Rule};
use crate::toml_lite::{parse, quote};
use std::collections::BTreeMap;
use std::path::Path;

/// One tolerated violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// The rule key.
    pub rule: String,
    /// Workspace-relative file (redundant with the fingerprint, kept for
    /// human readability of the TOML).
    pub file: String,
    /// The fingerprint: `file::function::detail#ordinal`.
    pub key: String,
}

/// The parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Per-rule high-water marks from `[counts]`.
    pub counts: BTreeMap<String, i64>,
    /// Tolerated violations.
    pub entries: Vec<BaselineEntry>,
}

/// The result of matching current findings against the baseline.
#[derive(Debug, Default)]
pub struct Ratchet<'a> {
    /// Findings with no baseline entry — regressions.
    pub new: Vec<&'a Finding>,
    /// Findings covered by a baseline entry.
    pub tolerated: Vec<&'a Finding>,
    /// Baseline entries whose violation no longer exists.
    pub stale: Vec<BaselineEntry>,
}

impl Baseline {
    /// Loads `analysis/baseline.toml` under `root`. A missing baseline is an
    /// empty baseline (all-zero high-water marks).
    pub fn load(root: &Path) -> Result<Baseline, String> {
        let path = root.join("analysis/baseline.toml");
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Ok(Baseline::default());
        };
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the baseline TOML.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = parse(text)?;
        let mut counts = BTreeMap::new();
        if let Some(table) = doc.tables.get("counts") {
            for (key, value) in table {
                if Rule::from_key(key).is_none() {
                    return Err(format!("[counts] has unknown rule key `{key}`"));
                }
                let n = value
                    .as_int()
                    .ok_or_else(|| format!("[counts] `{key}` must be an integer"))?;
                if n < 0 {
                    return Err(format!("[counts] `{key}` must be non-negative"));
                }
                counts.insert(key.clone(), n);
            }
        }
        let mut entries = Vec::new();
        for entry in doc
            .arrays
            .get("violation")
            .map(|v| v.as_slice())
            .unwrap_or(&[])
        {
            let rule = entry
                .get("rule")
                .and_then(|v| v.as_str())
                .ok_or("a [[violation]] is missing `rule`")?
                .to_string();
            if Rule::from_key(&rule).is_none() {
                return Err(format!("[[violation]] has unknown rule `{rule}`"));
            }
            entries.push(BaselineEntry {
                rule,
                file: entry
                    .get("file")
                    .and_then(|v| v.as_str())
                    .ok_or("a [[violation]] is missing `file`")?
                    .to_string(),
                key: entry
                    .get("key")
                    .and_then(|v| v.as_str())
                    .ok_or("a [[violation]] is missing `key`")?
                    .to_string(),
            });
        }
        Ok(Baseline { counts, entries })
    }

    /// Internal consistency: per-rule entry tallies must not exceed the
    /// recorded high-water marks (the ratchet direction), and every rule key
    /// in `[counts]` must be present (missing keys read as zero, which then
    /// forbids entries for that rule).
    pub fn verify_well_formed(&self) -> Result<(), String> {
        let mut tallies: BTreeMap<&str, i64> = BTreeMap::new();
        for entry in &self.entries {
            *tallies.entry(entry.rule.as_str()).or_default() += 1;
        }
        for rule in Rule::ALL {
            let tally = tallies.get(rule.key()).copied().unwrap_or(0);
            let count = self.counts.get(rule.key()).copied().unwrap_or(0);
            if tally > count {
                return Err(format!(
                    "baseline lists {tally} `{rule}` violations but [counts] caps it at {count} — the baseline may only shrink"
                ));
            }
        }
        Ok(())
    }

    /// Matches `findings` (with fingerprints from [`fingerprints`]) against
    /// the baseline.
    pub fn ratchet<'a>(&self, findings: &'a [Finding]) -> Ratchet<'a> {
        let prints = fingerprints(findings);
        let mut result = Ratchet::default();
        let mut used = vec![false; self.entries.len()];
        for (finding, print) in findings.iter().zip(&prints) {
            let slot = self
                .entries
                .iter()
                .enumerate()
                .find(|(i, e)| !used[*i] && e.rule == finding.rule.key() && e.key == *print);
            match slot {
                Some((i, _)) => {
                    used[i] = true;
                    result.tolerated.push(finding);
                }
                None => result.new.push(finding),
            }
        }
        for (i, entry) in self.entries.iter().enumerate() {
            if !used[i] {
                result.stale.push(entry.clone());
            }
        }
        result
    }

    /// Renders a baseline that tolerates exactly `findings`, ratcheting the
    /// `[counts]` high-water marks down (never up) from `self`.
    /// Errors when a rule's finding count exceeds its previous high-water
    /// mark, unless `force` is set (the override for deliberately accepting
    /// a new tolerated violation — a reviewed diff of this file).
    pub fn render_ratcheted(&self, findings: &[Finding], force: bool) -> Result<String, String> {
        let prints = fingerprints(findings);
        let mut per_rule: BTreeMap<&str, i64> = BTreeMap::new();
        for finding in findings {
            *per_rule.entry(finding.rule.key()).or_default() += 1;
        }
        let mut out = String::from(
            "# Ratcheting baseline for `cargo run -p melissa_analysis -- check`.\n\
             # [counts] is a per-rule high-water mark: it may only go down.\n\
             # Regenerate with `cargo run -p melissa_analysis -- ratchet`.\n\nversion = 1\n\n[counts]\n",
        );
        for rule in Rule::ALL {
            let now = per_rule.get(rule.key()).copied().unwrap_or(0);
            let before = self.counts.get(rule.key()).copied().unwrap_or(0);
            if now > before && !force {
                return Err(format!(
                    "`{rule}` has {now} findings but the baseline high-water mark is {before}; fix the new violations (or ratchet with --force to accept them)"
                ));
            }
            out.push_str(&format!("{} = {now}\n", rule.key()));
        }
        for (finding, print) in findings.iter().zip(&prints) {
            out.push_str(&format!(
                "\n[[violation]]\nrule = {}\nfile = {}\nkey = {}\n",
                quote(finding.rule.key()),
                quote(&finding.file),
                quote(print),
            ));
        }
        Ok(out)
    }
}

/// Line-number-free fingerprints for `findings`, with `#ordinal` suffixes
/// disambiguating repeats of the same detail within one function (ordinals
/// follow source order, so inserting an unrelated violation above an existing
/// one shifts identity — acceptable: both sites are then re-reviewed).
pub fn fingerprints(findings: &[Finding]) -> Vec<String> {
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    findings
        .iter()
        .map(|f| {
            let stem = format!("{}::{}", f.rule.key(), f.fingerprint_stem());
            let ordinal = seen.entry(stem.clone()).or_insert(0);
            *ordinal += 1;
            format!("{}#{}", f.fingerprint_stem(), *ordinal)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, file: &str, function: &str, detail: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            function: function.into(),
            detail: detail.into(),
            message: String::new(),
        }
    }

    #[test]
    fn fingerprints_disambiguate_repeats() {
        let findings = vec![
            finding(Rule::PanicSurface, "a.rs", "f", ".unwrap()"),
            finding(Rule::PanicSurface, "a.rs", "f", ".unwrap()"),
            finding(Rule::PanicSurface, "a.rs", "g", ".unwrap()"),
        ];
        assert_eq!(
            fingerprints(&findings),
            [
                "a.rs::f::.unwrap()#1",
                "a.rs::f::.unwrap()#2",
                "a.rs::g::.unwrap()#1"
            ]
        );
    }

    #[test]
    fn ratchet_partitions_new_tolerated_and_stale() {
        let baseline = Baseline::parse(
            "version = 1\n[counts]\npanic_surface = 2\n\n[[violation]]\nrule = \"panic_surface\"\nfile = \"a.rs\"\nkey = \"a.rs::f::.unwrap()#1\"\n\n[[violation]]\nrule = \"panic_surface\"\nfile = \"gone.rs\"\nkey = \"gone.rs::h::panic!#1\"\n",
        )
        .unwrap();
        baseline.verify_well_formed().unwrap();
        let findings = vec![
            finding(Rule::PanicSurface, "a.rs", "f", ".unwrap()"),
            finding(Rule::SeedPolicy, "b.rs", "g", ".gen_range()"),
        ];
        let ratchet = baseline.ratchet(&findings);
        assert_eq!(ratchet.tolerated.len(), 1);
        assert_eq!(ratchet.new.len(), 1);
        assert_eq!(ratchet.new[0].rule, Rule::SeedPolicy);
        assert_eq!(ratchet.stale.len(), 1);
        assert_eq!(ratchet.stale[0].file, "gone.rs");
    }

    #[test]
    fn render_refuses_to_grow_without_force() {
        let baseline = Baseline::parse("version = 1\n[counts]\npanic_surface = 0\n").unwrap();
        let findings = vec![finding(Rule::PanicSurface, "a.rs", "f", ".unwrap()")];
        assert!(baseline.render_ratcheted(&findings, false).is_err());
        let forced = baseline.render_ratcheted(&findings, true).unwrap();
        let reparsed = Baseline::parse(&forced).unwrap();
        assert_eq!(reparsed.counts["panic_surface"], 1);
        assert_eq!(reparsed.entries.len(), 1);
        reparsed.verify_well_formed().unwrap();
    }

    #[test]
    fn render_shrinks_counts_to_current_findings() {
        let baseline = Baseline::parse("version = 1\n[counts]\npanic_surface = 5\n").unwrap();
        let rendered = baseline.render_ratcheted(&[], false).unwrap();
        let reparsed = Baseline::parse(&rendered).unwrap();
        assert_eq!(
            reparsed.counts["panic_surface"], 0,
            "high-water mark ratchets down"
        );
    }

    #[test]
    fn well_formedness_rejects_entries_over_counts() {
        let baseline = Baseline::parse(
            "version = 1\n[counts]\npanic_surface = 0\n\n[[violation]]\nrule = \"panic_surface\"\nfile = \"a.rs\"\nkey = \"k#1\"\n",
        )
        .unwrap();
        assert!(baseline.verify_well_formed().is_err());
    }

    #[test]
    fn parse_rejects_unknown_rules_and_negative_counts() {
        assert!(Baseline::parse("[counts]\nbogus_rule = 1\n").is_err());
        assert!(Baseline::parse("[counts]\npanic_surface = -1\n").is_err());
        assert!(
            Baseline::parse("[[violation]]\nrule = \"nope\"\nfile = \"a\"\nkey = \"k\"\n").is_err()
        );
    }
}
