//! CLI for the workspace lint engine: `check [--deny]`, `ratchet [--force]`,
//! `verify-baseline`, `graph [--dot] [--check]`, each with an optional
//! `--root <path>`.

use melissa_analysis::baseline::Baseline;
use melissa_analysis::callgraph::to_dot as callgraph_dot;
use melissa_analysis::engine::{analyze, build_graphs, graph_report, load_and_ratchet, report};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: melissa_analysis <check [--deny] | ratchet [--force] | verify-baseline | graph [--dot] [--check]> [--root <path>]";

enum Command {
    Check,
    Ratchet,
    VerifyBaseline,
    Graph,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut deny = false;
    let mut force = false;
    let mut dot = false;
    let mut graph_check = false;
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "check" if command.is_none() => command = Some(Command::Check),
            "ratchet" if command.is_none() => command = Some(Command::Ratchet),
            "verify-baseline" if command.is_none() => command = Some(Command::VerifyBaseline),
            "graph" if command.is_none() => command = Some(Command::Graph),
            "--deny" => deny = true,
            "--force" => force = true,
            "--dot" => dot = true,
            "--check" if matches!(command, Some(Command::Graph)) => graph_check = true,
            "--root" => match iter.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return usage_error("--root needs a path"),
            },
            other => return usage_error(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(command) = command else {
        return usage_error("missing command");
    };
    // Default root: the workspace this binary was built from (robust under
    // `cargo run` from any directory).
    let root = root.unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));

    let outcome = match command {
        Command::Check => run_check(&root, deny),
        Command::Ratchet => run_ratchet(&root, force),
        Command::VerifyBaseline => run_verify(&root),
        Command::Graph => run_graph(&root, dot, graph_check),
    };
    match outcome {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn run_check(root: &std::path::Path, deny: bool) -> Result<ExitCode, String> {
    let analysis = analyze(root)?;
    let (_, ratchet) = load_and_ratchet(root, &analysis)?;
    let (text, failed) = report(&analysis, &ratchet);
    print!("{text}");
    if failed && deny {
        println!("check --deny: FAILED");
        Ok(ExitCode::from(1))
    } else {
        if failed {
            println!("(advisory run: rerun with --deny to enforce)");
        }
        Ok(ExitCode::SUCCESS)
    }
}

fn run_ratchet(root: &std::path::Path, force: bool) -> Result<ExitCode, String> {
    let analysis = analyze(root)?;
    if let Some((file, line, problem)) = analysis.directive_errors.first() {
        return Err(format!(
            "malformed directive at {file}:{line}: {problem} (fix before ratcheting)"
        ));
    }
    let baseline = Baseline::load(root)?;
    let rendered = baseline.render_ratcheted(&analysis.findings, force)?;
    let path = root.join("analysis/baseline.toml");
    std::fs::write(&path, rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!(
        "wrote {} with {} tolerated violation(s)",
        path.display(),
        analysis.findings.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn run_verify(root: &std::path::Path) -> Result<ExitCode, String> {
    let baseline = Baseline::load(root)?;
    baseline.verify_well_formed()?;
    println!(
        "analysis/baseline.toml well-formed: {} tolerated violation(s), high-water marks {:?}",
        baseline.entries.len(),
        baseline.counts
    );
    Ok(ExitCode::SUCCESS)
}

fn run_graph(root: &std::path::Path, dot: bool, check: bool) -> Result<ExitCode, String> {
    let graphs = build_graphs(root)?;
    let (text, failed) = graph_report(&graphs);
    print!("{text}");
    if dot {
        let dir = root.join("target/analysis");
        std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        let call_path = dir.join("callgraph.dot");
        std::fs::write(
            &call_path,
            callgraph_dot(&graphs.table, &graphs.graph, &graphs.reach),
        )
        .map_err(|e| format!("writing {}: {e}", call_path.display()))?;
        let lock_path = dir.join("lockgraph.dot");
        std::fs::write(&lock_path, graphs.locks.to_dot())
            .map_err(|e| format!("writing {}: {e}", lock_path.display()))?;
        println!("wrote {} and {}", call_path.display(), lock_path.display());
    }
    if failed && check {
        println!("graph --check: FAILED");
        Ok(ExitCode::from(1))
    } else {
        if failed {
            println!("(advisory run: rerun with --check to enforce)");
        }
        Ok(ExitCode::SUCCESS)
    }
}
