//! The analysis engine: loads the workspace once, applies the intra-function
//! rules per file, resolves the call graph for the interprocedural rules,
//! and matches the combined result against the ratcheting baseline.

use crate::baseline::{fingerprints, Baseline, Ratchet};
use crate::callgraph::{interprocedural_findings, propagate, CallGraph, Propagation};
use crate::lockgraph::LockGraph;
use crate::manifest::{LockManifest, SeedManifest, UnsafeManifest};
use crate::rules::{apply_all, Finding, Rule};
use crate::symbols::{SymbolTable, Workspace};
use std::collections::BTreeMap;
use std::path::Path;

/// Everything one analysis run produced.
pub struct Analysis {
    /// All findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Matching fingerprints (same order as `findings`).
    pub fingerprints: Vec<String>,
    /// Malformed-directive hard errors: `(file, line, problem)`.
    pub directive_errors: Vec<(String, u32, String)>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// The resolved workspace graphs (the `graph` subcommand's payload, also
/// reusable from tests).
pub struct Graphs {
    /// Scanned workspace (models retained).
    pub ws: Workspace,
    /// Symbol table over it.
    pub table: SymbolTable,
    /// Resolved call graph.
    pub graph: CallGraph,
    /// Hot-path reachability (alloc-pruned; used for DOT colouring).
    pub reach: Propagation,
    /// Inferred lock graph.
    pub locks: LockGraph,
}

/// Runs the full analysis over the workspace at `root`.
pub fn analyze(root: &Path) -> Result<Analysis, String> {
    let locks = LockManifest::load(root)?;
    let seeds = SeedManifest::load(root)?;
    let unsafes = UnsafeManifest::load(root)?;
    let ws = Workspace::load(root)?;

    let mut findings = Vec::new();
    let mut directive_errors = Vec::new();
    for model in &ws.files {
        for (line, problem) in &model.directives.malformed {
            directive_errors.push((model.rel_path.clone(), *line, problem.clone()));
        }
        findings.extend(apply_all(model, &locks, &seeds, &unsafes));
    }

    let table = SymbolTable::build(&ws);
    let graph = CallGraph::build(&ws, &table);
    findings.extend(interprocedural_findings(&ws, &table, &graph));

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let fingerprints = fingerprints(&findings);
    Ok(Analysis {
        findings,
        fingerprints,
        directive_errors,
        files_scanned: ws.files.len(),
    })
}

/// Resolves the workspace graphs at `root`.
pub fn build_graphs(root: &Path) -> Result<Graphs, String> {
    let manifest = LockManifest::load(root)?;
    let ws = Workspace::load(root)?;
    let table = SymbolTable::build(&ws);
    let graph = CallGraph::build(&ws, &table);
    let reach = propagate(&ws, &table, &graph, Some("alloc"));
    let locks = LockGraph::build(&ws, &table, &graph, &manifest);
    Ok(Graphs {
        ws,
        table,
        graph,
        reach,
        locks,
    })
}

/// Renders the outcome of a `check` run. Returns `(report, failed)` where
/// `failed` reflects what `--deny` should exit non-zero on: new findings,
/// stale baseline entries, or malformed directives.
pub fn report(analysis: &Analysis, ratchet: &Ratchet<'_>) -> (String, bool) {
    let mut out = String::new();
    let mut failed = false;

    if !analysis.directive_errors.is_empty() {
        failed = true;
        out.push_str("malformed directives (always fatal):\n");
        for (file, line, problem) in &analysis.directive_errors {
            out.push_str(&format!("  {file}:{line}: {problem}\n"));
        }
        out.push('\n');
    }

    if !ratchet.new.is_empty() {
        failed = true;
        out.push_str(&format!(
            "{} new violation(s) not covered by analysis/baseline.toml:\n",
            ratchet.new.len()
        ));
        for finding in &ratchet.new {
            out.push_str(&format!(
                "  [{}] {}:{}: {}\n",
                finding.rule, finding.file, finding.line, finding.message
            ));
        }
        out.push('\n');
    }

    if !ratchet.stale.is_empty() {
        failed = true;
        out.push_str(&format!(
            "{} stale baseline entr{} — the code improved; run `cargo run -p melissa_analysis -- ratchet` to shrink the baseline:\n",
            ratchet.stale.len(),
            if ratchet.stale.len() == 1 { "y" } else { "ies" }
        ));
        for entry in &ratchet.stale {
            out.push_str(&format!("  [{}] {}\n", entry.rule, entry.key));
        }
        out.push('\n');
    }

    let mut per_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for rule in Rule::ALL {
        per_rule.insert(rule.key(), (0, 0));
    }
    for finding in &ratchet.new {
        per_rule.entry(finding.rule.key()).or_default().0 += 1;
    }
    for finding in &ratchet.tolerated {
        per_rule.entry(finding.rule.key()).or_default().1 += 1;
    }
    out.push_str(&format!(
        "scanned {} files: {} finding(s) ({} new, {} tolerated by baseline)\n",
        analysis.files_scanned,
        analysis.findings.len(),
        ratchet.new.len(),
        ratchet.tolerated.len(),
    ));
    for (rule, (new, tolerated)) in per_rule {
        out.push_str(&format!(
            "  {rule:<24} new {new:>3}   baselined {tolerated:>3}\n"
        ));
    }
    (out, failed)
}

/// Renders the `graph` summary. Returns `(report, failed)` where `failed`
/// reflects what `graph --check` should exit non-zero on: a lock-graph
/// cycle, or an edge contradicting the ranks declared in
/// `analysis/locks.toml`.
pub fn graph_report(graphs: &Graphs) -> (String, bool) {
    let mut out = String::new();
    let mut failed = false;

    let fn_count = graphs.table.fns.len();
    let edge_count: usize = graphs.graph.edges.iter().map(|e| e.len()).sum();
    let reached = graphs.reach.reached.iter().filter(|&&r| r).count();
    out.push_str(&format!(
        "call graph: {fn_count} fns, {edge_count} edges, {} hot root(s), {reached} reachable from hot paths\n",
        graphs.reach.roots.len(),
    ));
    let ext_total: usize = graphs.graph.externals.values().sum();
    let amb_total: usize = graphs.graph.ambiguous.values().sum();
    out.push_str(&format!(
        "  unresolved: {} external name(s) ({ext_total} site(s)), {} ambiguous name(s) ({amb_total} site(s))\n",
        graphs.graph.externals.len(),
        graphs.graph.ambiguous.len(),
    ));

    out.push_str(&format!(
        "lock graph: {} class(es), {} edge(s)\n",
        graphs.locks.nodes.len(),
        graphs.locks.edges.len(),
    ));
    for edge in &graphs.locks.edges {
        let via = if edge.via.is_empty() {
            String::new()
        } else {
            format!(" via {}", edge.via)
        };
        out.push_str(&format!(
            "  {} → {} ({}:{}{via})\n",
            graphs.locks.nodes[edge.from].key,
            graphs.locks.nodes[edge.to].key,
            edge.file,
            edge.line,
        ));
    }
    let undeclared = graphs.locks.undeclared();
    if !undeclared.is_empty() {
        out.push_str(&format!(
            "  {} lock class(es) not declared in analysis/locks.toml:\n",
            undeclared.len()
        ));
        for node in undeclared {
            out.push_str(&format!("    {}\n", node.key));
        }
    }

    let cycles = graphs.locks.cycles();
    if !cycles.is_empty() {
        failed = true;
        out.push_str(&format!(
            "{} lock-order cycle(s) — deadlock risk:\n",
            cycles.len()
        ));
        for cycle in &cycles {
            out.push_str(&format!("  {}\n", graphs.locks.describe_cycle(cycle)));
        }
    }
    let violations = graphs.locks.rank_violations();
    if !violations.is_empty() {
        failed = true;
        out.push_str(&format!(
            "{} edge(s) contradict the declared ranks in analysis/locks.toml:\n",
            violations.len()
        ));
        for edge in violations {
            out.push_str(&format!(
                "  {} (rank {}) held while acquiring {} (rank {}) at {}:{}\n",
                graphs.locks.nodes[edge.from].key,
                graphs.locks.nodes[edge.from].rank.unwrap_or(0),
                graphs.locks.nodes[edge.to].key,
                graphs.locks.nodes[edge.to].rank.unwrap_or(0),
                edge.file,
                edge.line,
            ));
        }
    }
    if !failed {
        out.push_str("lock order: cycle-free, declared ranks form a topological order\n");
    }
    (out, failed)
}

/// Loads the baseline and matches `analysis` against it.
pub fn load_and_ratchet<'a>(
    root: &Path,
    analysis: &'a Analysis,
) -> Result<(Baseline, Ratchet<'a>), String> {
    let baseline = Baseline::load(root)?;
    baseline.verify_well_formed()?;
    let ratchet = baseline.ratchet(&analysis.findings);
    Ok((baseline, ratchet))
}
