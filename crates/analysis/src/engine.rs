//! The analysis engine: walks the workspace, scans every Rust file, applies
//! the rules, and matches the result against the ratcheting baseline.

use crate::baseline::{fingerprints, Baseline, Ratchet};
use crate::manifest::{LockManifest, SeedManifest};
use crate::rules::{apply_all, Finding, Rule};
use crate::scanner::FileModel;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Directories walked under the workspace root.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];
/// Path components that end a walk: build output, vendored third-party
/// stand-ins (not this project's code), and the analyzer's own deliberately
/// violating fixture files.
const SKIP_COMPONENTS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

/// Everything one analysis run produced.
pub struct Analysis {
    /// All findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Matching fingerprints (same order as `findings`).
    pub fingerprints: Vec<String>,
    /// Malformed-directive hard errors: `(file, line, problem)`.
    pub directive_errors: Vec<(String, u32, String)>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Runs the full analysis over the workspace at `root`.
pub fn analyze(root: &Path) -> Result<Analysis, String> {
    let locks = LockManifest::load(root)?;
    let seeds = SeedManifest::load(root)?;
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rust_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    let mut directive_errors = Vec::new();
    let files_scanned = files.len();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let model = FileModel::scan_path(root, &rel).map_err(|e| format!("reading {rel}: {e}"))?;
        for (line, problem) in &model.directives.malformed {
            directive_errors.push((rel.clone(), *line, problem.clone()));
        }
        findings.extend(apply_all(&model, &locks, &seeds));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let fingerprints = fingerprints(&findings);
    Ok(Analysis {
        findings,
        fingerprints,
        directive_errors,
        files_scanned,
    })
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if SKIP_COMPONENTS.contains(&name.as_str()) {
            continue;
        }
        if path.is_dir() {
            collect_rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Renders the outcome of a `check` run. Returns `(report, failed)` where
/// `failed` reflects what `--deny` should exit non-zero on: new findings,
/// stale baseline entries, or malformed directives.
pub fn report(analysis: &Analysis, ratchet: &Ratchet<'_>) -> (String, bool) {
    let mut out = String::new();
    let mut failed = false;

    if !analysis.directive_errors.is_empty() {
        failed = true;
        out.push_str("malformed directives (always fatal):\n");
        for (file, line, problem) in &analysis.directive_errors {
            out.push_str(&format!("  {file}:{line}: {problem}\n"));
        }
        out.push('\n');
    }

    if !ratchet.new.is_empty() {
        failed = true;
        out.push_str(&format!(
            "{} new violation(s) not covered by analysis/baseline.toml:\n",
            ratchet.new.len()
        ));
        for finding in &ratchet.new {
            out.push_str(&format!(
                "  [{}] {}:{}: {}\n",
                finding.rule, finding.file, finding.line, finding.message
            ));
        }
        out.push('\n');
    }

    if !ratchet.stale.is_empty() {
        failed = true;
        out.push_str(&format!(
            "{} stale baseline entr{} — the code improved; run `cargo run -p melissa_analysis -- ratchet` to shrink the baseline:\n",
            ratchet.stale.len(),
            if ratchet.stale.len() == 1 { "y" } else { "ies" }
        ));
        for entry in &ratchet.stale {
            out.push_str(&format!("  [{}] {}\n", entry.rule, entry.key));
        }
        out.push('\n');
    }

    let mut per_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for rule in Rule::ALL {
        per_rule.insert(rule.key(), (0, 0));
    }
    for finding in &ratchet.new {
        per_rule.entry(finding.rule.key()).or_default().0 += 1;
    }
    for finding in &ratchet.tolerated {
        per_rule.entry(finding.rule.key()).or_default().1 += 1;
    }
    out.push_str(&format!(
        "scanned {} files: {} finding(s) ({} new, {} tolerated by baseline)\n",
        analysis.files_scanned,
        analysis.findings.len(),
        ratchet.new.len(),
        ratchet.tolerated.len(),
    ));
    for (rule, (new, tolerated)) in per_rule {
        out.push_str(&format!(
            "  {rule:<16} new {new:>3}   baselined {tolerated:>3}\n"
        ));
    }
    (out, failed)
}

/// Loads the baseline and matches `analysis` against it.
pub fn load_and_ratchet<'a>(
    root: &Path,
    analysis: &'a Analysis,
) -> Result<(Baseline, Ratchet<'a>), String> {
    let baseline = Baseline::load(root)?;
    baseline.verify_well_formed()?;
    let ratchet = baseline.ratchet(&analysis.findings);
    Ok((baseline, ratchet))
}
