//! Workspace loading and the symbol table: every scanned file retained in
//! memory, every `fn` indexed by name and owner, plus the type-level facts
//! (struct fields, trait impls) the call-graph resolver leans on.

use crate::lexer::{Token, TokenKind};
use crate::rules::{ident_text, is_punct};
use crate::scanner::{FileContext, FileModel};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Directories walked under the workspace root.
pub const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];
/// Path components that end a walk: build output, vendored third-party
/// stand-ins (not this project's code), and the analyzer's own deliberately
/// violating fixture files.
pub const SKIP_COMPONENTS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

/// The scanned workspace: every Rust file under the scan roots, in sorted
/// path order, with its full [`FileModel`] retained for interprocedural
/// passes.
pub struct Workspace {
    /// The workspace root the models were loaded from (empty for synthetic
    /// test workspaces).
    pub root: PathBuf,
    /// One model per file, sorted by `rel_path`.
    pub files: Vec<FileModel>,
}

impl Workspace {
    /// Walks and scans the workspace rooted at `root`.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut paths = Vec::new();
        for dir in SCAN_ROOTS {
            collect_rust_files(&root.join(dir), &mut paths);
        }
        paths.sort();
        let mut files = Vec::new();
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let model =
                FileModel::scan_path(root, &rel).map_err(|e| format!("reading {rel}: {e}"))?;
            files.push(model);
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Builds a synthetic workspace from pre-scanned models (tests).
    pub fn from_models(mut files: Vec<FileModel>) -> Workspace {
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Workspace {
            root: PathBuf::new(),
            files,
        }
    }
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if SKIP_COMPONENTS.contains(&name.as_str()) {
            continue;
        }
        if path.is_dir() {
            collect_rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Index of a function in [`SymbolTable::fns`].
pub type FnId = usize;

/// One function symbol, denormalised from its [`crate::scanner::FnSpan`].
#[derive(Debug)]
pub struct FnSym {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's `functions`.
    pub span: usize,
    /// Plain function name.
    pub name: String,
    /// Owning type/trait, if any.
    pub owner: Option<String>,
    /// True for a `trait` block's provided default method.
    pub owner_is_trait: bool,
    /// True for `#[cfg(test)]`/`#[test]` fns **or** any fn in a `tests/`
    /// file — interprocedural rules neither start from nor propagate into
    /// test code.
    pub is_test: bool,
    /// Carries a `// analysis: hot_path` marker.
    pub hot: bool,
    /// Has a real body (false for bodyless trait-method declarations).
    pub has_body: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Crate the file belongs to (`crates/<name>/…` → `<name>`).
    pub crate_name: String,
    /// Workspace-relative path of the defining file.
    pub rel_path: String,
}

impl FnSym {
    /// `Owner::name` for methods, plain `name` otherwise.
    pub fn display_name(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace-wide symbol table.
pub struct SymbolTable {
    /// Every function, in (file, span) order — so `FnId`s are deterministic.
    pub fns: Vec<FnSym>,
    /// Functions by plain name.
    pub by_name: BTreeMap<String, Vec<FnId>>,
    /// Workspace `struct`/`enum` names and `impl` owners.
    pub type_names: BTreeSet<String>,
    /// Workspace `trait` names.
    pub trait_names: BTreeSet<String>,
    /// `(trait, type)` pairs from `impl Trait for Type`.
    pub trait_impls: BTreeSet<(String, String)>,
    /// `owner → field → candidate type names` mined from struct definitions;
    /// feeds `self.field.method()` receiver typing.
    pub struct_fields: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

impl SymbolTable {
    /// Builds the table over a scanned workspace.
    pub fn build(ws: &Workspace) -> SymbolTable {
        let mut table = SymbolTable {
            fns: Vec::new(),
            by_name: BTreeMap::new(),
            type_names: BTreeSet::new(),
            trait_names: BTreeSet::new(),
            trait_impls: BTreeSet::new(),
            struct_fields: BTreeMap::new(),
        };
        for (file_idx, model) in ws.files.iter().enumerate() {
            let crate_name = crate_of(&model.rel_path);
            let file_is_test = model.context == FileContext::Test;
            for (span_idx, span) in model.functions.iter().enumerate() {
                if span.name.is_empty() {
                    continue;
                }
                let id = table.fns.len();
                table.fns.push(FnSym {
                    file: file_idx,
                    span: span_idx,
                    name: span.name.clone(),
                    owner: span.owner.clone(),
                    owner_is_trait: span.owner_is_trait,
                    is_test: span.is_test || file_is_test,
                    hot: span.hot_path,
                    has_body: span.has_body,
                    line: span.line,
                    crate_name: crate_name.clone(),
                    rel_path: model.rel_path.clone(),
                });
                table.by_name.entry(span.name.clone()).or_default().push(id);
                if let Some(owner) = &span.owner {
                    if span.owner_is_trait {
                        table.trait_names.insert(owner.clone());
                    } else {
                        table.type_names.insert(owner.clone());
                    }
                }
            }
            for (tr, ty) in &model.trait_impls {
                table.trait_names.insert(tr.clone());
                table.type_names.insert(ty.clone());
                table.trait_impls.insert((tr.clone(), ty.clone()));
            }
            collect_type_defs(model, &mut table);
        }
        table
    }

    /// All `fn`s named `name` with owner `owner` that have bodies.
    pub fn owner_methods(&self, owner: &str, name: &str) -> Vec<FnId> {
        self.by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| {
                        self.fns[id].has_body && self.fns[id].owner.as_deref() == Some(owner)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Resolves method `name` on a value of type-or-trait `target`:
    /// direct impl methods first; for traits, every implementing type's
    /// method plus the trait's own default. `exclude_owner` suppresses one
    /// implementing type (used to keep `self.field`-driven dyn dispatch from
    /// claiming the enclosing type contains itself).
    pub fn dispatch(&self, target: &str, name: &str, exclude_owner: Option<&str>) -> Vec<FnId> {
        let direct = self.owner_methods(target, name);
        if !direct.is_empty() && !self.trait_names.contains(target) {
            return direct;
        }
        if self.trait_names.contains(target) {
            // `direct` here is the trait's provided default. It only applies
            // to implementing types that do NOT override the method — a
            // default shadowed by every impl must not leak its own `self.…`
            // fan-out into dispatch.
            let mut out = Vec::new();
            let mut any_impl = false;
            for (tr, ty) in &self.trait_impls {
                if tr == target && exclude_owner != Some(ty.as_str()) {
                    any_impl = true;
                    let overrides = self.owner_methods(ty, name);
                    if overrides.is_empty() {
                        out.extend(direct.iter().copied());
                    } else {
                        out.extend(overrides);
                    }
                }
            }
            if !any_impl {
                out.extend(direct);
            }
            out.sort_unstable();
            out.dedup();
            return out;
        }
        // A type without a direct method: maybe a default from a trait it
        // implements.
        let mut out = Vec::new();
        for (tr, ty) in &self.trait_impls {
            if ty == target {
                out.extend(
                    self.owner_methods(tr, name)
                        .into_iter()
                        .filter(|&id| self.fns[id].owner_is_trait),
                );
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// `crates/<name>/…` → `<name>`; otherwise the first path component.
fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("crates").to_string(),
        Some(first) => first.to_string(),
        None => String::new(),
    }
}

/// Mines `struct`/`enum` names and struct field types from one file's token
/// stream.
fn collect_type_defs(model: &FileModel, table: &mut SymbolTable) {
    let toks = &model.tokens;
    let mut i = 0;
    while i < toks.len() {
        let tok = &toks[i];
        if tok.kind != TokenKind::Ident || tok.raw {
            i += 1;
            continue;
        }
        match tok.text.as_str() {
            "struct" | "enum" | "union" => {
                if let Some(name) = ident_text(toks.get(i + 1)) {
                    table.type_names.insert(name.to_string());
                    if tok.text == "struct" {
                        if let Some(next) = collect_struct_fields(toks, i + 2, name, table) {
                            i = next;
                            continue;
                        }
                    }
                }
                i += 1;
            }
            "trait" => {
                if let Some(name) = ident_text(toks.get(i + 1)) {
                    table.trait_names.insert(name.to_string());
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// From just past a struct's name, finds `{ field: Type, … }` and records
/// each field's candidate type names (capitalised idents in the type
/// position). Returns the token index past the body, or `None` for tuple /
/// unit structs (or an expression context that only looked like one).
fn collect_struct_fields(
    toks: &[Token],
    from: usize,
    owner: &str,
    table: &mut SymbolTable,
) -> Option<usize> {
    // Skip generics / where clause to the body opener.
    let mut angle = 0isize;
    let mut j = from;
    let open = loop {
        let tok = toks.get(j)?;
        match &tok.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') if !is_punct(toks.get(j.wrapping_sub(1)), '-') => angle -= 1,
            TokenKind::Punct('{') if angle == 0 => break j,
            TokenKind::Punct('(') | TokenKind::Punct(';') if angle == 0 => return None,
            _ => {}
        }
        j += 1;
    };
    let mut depth = 0isize;
    let mut j = open;
    let mut field: Option<String> = None;
    let mut in_type = false;
    while let Some(tok) = toks.get(j) {
        match &tok.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            TokenKind::Punct(':')
                if depth == 1 && !is_punct(toks.get(j + 1), ':')
                // `field:` — but not the `::` of a path.
                && !is_punct(toks.get(j.wrapping_sub(1)), ':') =>
            {
                field = ident_text(toks.get(j.wrapping_sub(1))).map(str::to_string);
                in_type = field.is_some();
                j += 1;
                continue;
            }
            TokenKind::Punct(',') if depth == 1 => {
                field = None;
                in_type = false;
            }
            TokenKind::Ident if in_type && depth == 1 => {
                let starts_upper = tok.text.chars().next().is_some_and(char::is_uppercase);
                if starts_upper {
                    if let Some(field) = &field {
                        table
                            .struct_fields
                            .entry(owner.to_string())
                            .or_default()
                            .entry(field.clone())
                            .or_default()
                            .push(tok.text.clone());
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    Some(toks.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_models(
            files
                .iter()
                .map(|(rel, src)| FileModel::scan(rel, src))
                .collect(),
        )
    }

    #[test]
    fn table_indexes_fns_types_and_fields() {
        let ws = ws(&[(
            "crates/buf/src/lib.rs",
            "pub trait Policy { fn put(&self); }\n\
             pub struct Fifo { inner: Mutex<Inner>, shards: Vec<Box<dyn Policy>> }\n\
             impl Policy for Fifo { fn put(&self) {} }\n\
             impl Fifo { fn helper(&self) {} }\n\
             fn free() {}",
        )]);
        let table = SymbolTable::build(&ws);
        assert!(table.type_names.contains("Fifo"));
        assert!(table.trait_names.contains("Policy"));
        assert!(table
            .trait_impls
            .contains(&("Policy".to_string(), "Fifo".to_string())));
        let fields = &table.struct_fields["Fifo"];
        assert_eq!(fields["inner"], vec!["Mutex", "Inner"]);
        assert_eq!(fields["shards"], vec!["Vec", "Box", "Policy"]);
        assert_eq!(table.owner_methods("Fifo", "helper").len(), 1);
        // Trait dispatch finds the impl; bodyless trait decl is not a target.
        let put = table.dispatch("Policy", "put", None);
        assert_eq!(put.len(), 1);
        assert_eq!(table.fns[put[0]].owner.as_deref(), Some("Fifo"));
        assert!(table.dispatch("Policy", "put", Some("Fifo")).is_empty());
    }

    #[test]
    fn crate_names_come_from_the_path() {
        let ws = ws(&[
            ("crates/nn/src/mlp.rs", "fn a() {}"),
            ("src/main.rs", "fn b() {}"),
            ("tests/smoke.rs", "fn c() {}"),
        ]);
        let table = SymbolTable::build(&ws);
        let by = |name: &str| {
            let id = table.by_name[name][0];
            (table.fns[id].crate_name.clone(), table.fns[id].is_test)
        };
        assert_eq!(by("a"), ("nn".to_string(), false));
        assert_eq!(by("b"), ("src".to_string(), false));
        assert_eq!(by("c"), ("tests".to_string(), true));
    }
}
