//! The workspace lock graph: every "lock B acquired while lock A is held"
//! edge, collected across function boundaries, with cycle detection and a
//! check that the ranks declared in `analysis/locks.toml` form a topological
//! order of what the code actually does.
//!
//! Edges come from three walks, all witness-carrying (`file:line`):
//!
//! 1. **Intra-function**: a direct `.lock()`/`.read()`/`.write()` while a
//!    let-bound guard is live.
//! 2. **Cross-function**: a resolved call while guards are live contributes
//!    edges from every held class to every class in the callee's *transitive
//!    lock summary* (a fixpoint over the call graph).
//! 3. **Closures**: for `f(|x| …)` where the callee invokes its parameter
//!    while holding locks (detected as guards live at a bare unresolved call
//!    inside the callee), edges run from those locks to everything the
//!    closure body acquires. This is what catches the classic
//!    facade-holds-lock-then-calls-back-into-policy deadlock shape.
//!
//! Guard heuristics: a let-bound call to a workspace fn whose name starts
//! with `lock` is treated as binding a guard that holds the callee's summary
//! (the `lock_inner()` helper convention); everything else holding locks
//! only transiently contributes call-site edges but no live guard.

use crate::callgraph::CallGraph;
use crate::lexer::TokenKind;
use crate::manifest::LockManifest;
use crate::rules::{ident_text, is_punct, let_binding_name, receiver_chain};
use crate::symbols::{FnId, SymbolTable, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// One lock class in the inferred graph.
#[derive(Debug)]
pub struct LockNode {
    /// The declared class name, or `file::receiver` for undeclared locks.
    pub key: String,
    /// Declared rank, when `analysis/locks.toml` covers the class.
    pub rank: Option<i64>,
}

/// One held→acquired edge with its witness.
#[derive(Debug)]
pub struct LockEdge {
    /// Held class (index into [`LockGraph::nodes`]).
    pub from: usize,
    /// Acquired class.
    pub to: usize,
    /// Witness file.
    pub file: String,
    /// Witness line (the acquisition or the call site that leads to it).
    pub line: u32,
    /// How the edge arises (empty for a direct nested acquisition, else the
    /// callee or closure description).
    pub via: String,
}

/// The inferred workspace lock graph.
pub struct LockGraph {
    /// Interned lock classes.
    pub nodes: Vec<LockNode>,
    /// Deduplicated edges (first witness kept).
    pub edges: Vec<LockEdge>,
}

/// A cycle through the inferred graph: edge indices, in order.
#[derive(Debug)]
pub struct Cycle {
    /// Indices into [`LockGraph::edges`], from each node to the next.
    pub edges: Vec<usize>,
}

const ACQUIRERS: [&str; 3] = ["lock", "read", "write"];

struct Builder<'a> {
    ws: &'a Workspace,
    table: &'a SymbolTable,
    graph: &'a CallGraph,
    manifest: &'a LockManifest,
    nodes: Vec<LockNode>,
    node_index: BTreeMap<String, usize>,
    /// Per-fn direct acquisitions: `(token, node, line)`.
    direct: Vec<Vec<(usize, usize, u32)>>,
    /// Per-fn transitive lock summary.
    summary: Vec<BTreeSet<usize>>,
    /// Per-fn classes held while the fn invokes a bare unresolved callable
    /// (the closure-parameter shape).
    callback_held: Vec<BTreeSet<usize>>,
    edges: Vec<LockEdge>,
    edge_index: BTreeSet<(usize, usize)>,
}

impl LockGraph {
    /// Builds the graph over the resolved workspace.
    pub fn build(
        ws: &Workspace,
        table: &SymbolTable,
        graph: &CallGraph,
        manifest: &LockManifest,
    ) -> LockGraph {
        let n = table.fns.len();
        let mut b = Builder {
            ws,
            table,
            graph,
            manifest,
            nodes: Vec::new(),
            node_index: BTreeMap::new(),
            direct: vec![Vec::new(); n],
            summary: vec![BTreeSet::new(); n],
            callback_held: vec![BTreeSet::new(); n],
            edges: Vec::new(),
            edge_index: BTreeSet::new(),
        };
        for id in 0..n {
            b.collect_direct(id);
        }
        b.fixpoint_summaries();
        for id in 0..n {
            b.walk(id, false); // callback_held
        }
        for id in 0..n {
            b.walk(id, true); // edges
        }
        LockGraph {
            nodes: b.nodes,
            edges: b.edges,
        }
    }

    /// Every elementary cycle found by DFS (one per back edge; a self-loop
    /// counts). An empty result means the lock order is deadlock-free as
    /// far as the graph sees.
    pub fn cycles(&self) -> Vec<Cycle> {
        let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (idx, e) in self.edges.iter().enumerate() {
            adj.entry(e.from).or_default().push(idx);
        }
        let mut state = vec![0u8; self.nodes.len()]; // 0 new, 1 on-stack, 2 done
        let mut stack: Vec<(usize, usize)> = Vec::new(); // (node, via edge)
        let mut cycles = Vec::new();
        let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
        for start in 0..self.nodes.len() {
            if state[start] != 0 {
                continue;
            }
            self.dfs(start, &adj, &mut state, &mut stack, &mut cycles, &mut seen);
        }
        cycles
    }

    fn dfs(
        &self,
        node: usize,
        adj: &BTreeMap<usize, Vec<usize>>,
        state: &mut Vec<u8>,
        stack: &mut Vec<(usize, usize)>,
        cycles: &mut Vec<Cycle>,
        seen: &mut BTreeSet<Vec<usize>>,
    ) {
        state[node] = 1;
        for &edge_idx in adj.get(&node).map(|v| v.as_slice()).unwrap_or(&[]) {
            let to = self.edges[edge_idx].to;
            if state[to] == 1 || to == node {
                // Back edge: the cycle is the stack from `to` down, plus this
                // edge.
                let mut edges: Vec<usize> = Vec::new();
                if to != node {
                    // `to` is either on the stack or the DFS root (roots are
                    // never pushed): take the path edges from `to` onwards.
                    let from_idx = stack
                        .iter()
                        .position(|&(n, _)| n == to)
                        .map(|p| p + 1)
                        .unwrap_or(0);
                    for &(_, via) in &stack[from_idx..] {
                        edges.push(via);
                    }
                }
                edges.push(edge_idx);
                let mut key: Vec<usize> = edges.clone();
                key.sort_unstable();
                if seen.insert(key) {
                    cycles.push(Cycle { edges });
                }
            } else if state[to] == 0 {
                stack.push((to, edge_idx));
                self.dfs(to, adj, state, stack, cycles, seen);
                stack.pop();
            }
        }
        state[node] = 2;
    }

    /// Edges that contradict the declared ranks: an acquisition whose rank
    /// is not strictly greater than the held class's rank. Empty means the
    /// declared ranks are a valid topological order of the inferred graph.
    pub fn rank_violations(&self) -> Vec<&LockEdge> {
        self.edges
            .iter()
            .filter(|e| match (self.nodes[e.from].rank, self.nodes[e.to].rank) {
                (Some(held), Some(acq)) => acq <= held,
                _ => false,
            })
            .collect()
    }

    /// Nodes with no declared rank (visible in reports so new locks get
    /// classified instead of silently floating outside the order).
    pub fn undeclared(&self) -> Vec<&LockNode> {
        self.nodes.iter().filter(|n| n.rank.is_none()).collect()
    }

    /// Renders one cycle as a human-readable witness trail.
    pub fn describe_cycle(&self, cycle: &Cycle) -> String {
        let mut parts = Vec::new();
        for &idx in &cycle.edges {
            let e = &self.edges[idx];
            let via = if e.via.is_empty() {
                String::new()
            } else {
                format!(" via {}", e.via)
            };
            parts.push(format!(
                "{} → {} ({}:{}{via})",
                self.nodes[e.from].key, self.nodes[e.to].key, e.file, e.line
            ));
        }
        parts.join(", ")
    }

    /// DOT rendering: declared classes labelled with their rank, edge labels
    /// carrying the witness.
    pub fn to_dot(&self) -> String {
        let mut out = String::from(
            "digraph lockgraph {\n  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n",
        );
        for (idx, node) in self.nodes.iter().enumerate() {
            let label = match node.rank {
                Some(rank) => format!("{}\\nrank {rank}", dot_escape(&node.key)),
                None => format!("{}\\n(undeclared)", dot_escape(&node.key)),
            };
            out.push_str(&format!("  l{idx} [label=\"{label}\"];\n"));
        }
        for e in &self.edges {
            let label = format!("{}:{}", dot_escape(&e.file), e.line);
            out.push_str(&format!(
                "  l{} -> l{} [label=\"{label}\", fontsize=8];\n",
                e.from, e.to
            ));
        }
        out.push_str("}\n");
        out
    }
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl<'a> Builder<'a> {
    fn intern(&mut self, file: &str, receiver: &str) -> usize {
        let (key, rank) = match self.manifest.class_of(file, receiver) {
            Some(class) => (class.name.clone(), Some(class.rank)),
            None => (format!("{file}::{receiver}"), None),
        };
        if let Some(&idx) = self.node_index.get(&key) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(LockNode {
            key: key.clone(),
            rank,
        });
        self.node_index.insert(key, idx);
        idx
    }

    /// Records every `.lock()`/`.read()`/`.write()` (empty parens) in `id`'s
    /// body.
    fn collect_direct(&mut self, id: FnId) {
        let sym = &self.table.fns[id];
        if !sym.has_body || sym.is_test {
            return;
        }
        let model = &self.ws.files[sym.file];
        let body = model.functions[sym.span].body.clone();
        let rel = model.rel_path.clone();
        let toks = &model.tokens;
        let mut found = Vec::new();
        for i in body {
            if is_punct(toks.get(i), '.')
                && ident_text(toks.get(i + 1)).is_some_and(|m| ACQUIRERS.contains(&m))
                && is_punct(toks.get(i + 2), '(')
                && is_punct(toks.get(i + 3), ')')
            {
                let receiver = receiver_chain(toks, i);
                found.push((i, receiver, toks[i + 1].line));
            }
        }
        for (token, receiver, line) in found {
            let node = self.intern(&rel, &receiver);
            self.direct[id].push((token, node, line));
            self.summary[id].insert(node);
        }
    }

    /// Transitive lock summaries: `summary(f) = direct(f) ∪ ⋃ summary(g)`
    /// over every resolved callee `g`.
    fn fixpoint_summaries(&mut self) {
        loop {
            let mut changed = false;
            for id in 0..self.table.fns.len() {
                let mut add: Vec<usize> = Vec::new();
                for site in &self.graph.sites[id] {
                    for &callee in &site.callees {
                        for &node in &self.summary[callee] {
                            if !self.summary[id].contains(&node) {
                                add.push(node);
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    changed = true;
                    self.summary[id].extend(add);
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, file: &str, line: u32, via: &str) {
        if self.edge_index.insert((from, to)) {
            self.edges.push(LockEdge {
                from,
                to,
                file: file.to_string(),
                line,
                via: via.to_string(),
            });
        }
    }

    /// The guard-tracking walk over one body. With `emit` false it only
    /// records `callback_held`; with `emit` true it produces edges.
    fn walk(&mut self, id: FnId, emit: bool) {
        let sym = &self.table.fns[id];
        if !sym.has_body || sym.is_test {
            return;
        }
        let model = &self.ws.files[sym.file];
        let body = model.functions[sym.span].body.clone();
        let rel = model.rel_path.clone();
        let lo = body.start;

        // (guard name, brace depth, classes held, line)
        let mut live: Vec<(String, isize, Vec<usize>, u32)> = Vec::new();
        let mut depth = 0isize;
        let mut direct_iter = 0usize;
        let mut site_iter = 0usize;
        let mut ext_iter = 0usize;

        let mut i = body.start;
        while i < body.end {
            let toks = &self.ws.files[self.table.fns[id].file].tokens;
            match &toks[i].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    live.retain(|g| g.1 <= depth);
                }
                TokenKind::Ident if toks[i].text == "drop" && is_punct(toks.get(i + 1), '(') => {
                    if let Some(name) = ident_text(toks.get(i + 2)) {
                        if is_punct(toks.get(i + 3), ')') {
                            live.retain(|g| g.0 != name);
                        }
                    }
                }
                _ => {}
            }
            // Direct acquisition at this token?
            while direct_iter < self.direct[id].len() && self.direct[id][direct_iter].0 < i {
                direct_iter += 1;
            }
            if direct_iter < self.direct[id].len() && self.direct[id][direct_iter].0 == i {
                let (_, node, line) = self.direct[id][direct_iter];
                if emit {
                    let held: Vec<usize> = live.iter().flat_map(|g| g.2.clone()).collect();
                    for from in held {
                        self.add_edge(from, node, &rel, line, "");
                    }
                }
                let toks = &self.ws.files[self.table.fns[id].file].tokens;
                if let Some(name) = let_binding_name(toks, i, lo) {
                    if is_punct(toks.get(i + 4), ';') {
                        live.retain(|g| g.0 != name);
                        live.push((name, depth, vec![node], line));
                    }
                }
            }
            // Resolved call site anchored at this token?
            while site_iter < self.graph.sites[id].len()
                && self.graph.sites[id][site_iter].token < i
            {
                site_iter += 1;
            }
            if site_iter < self.graph.sites[id].len() && self.graph.sites[id][site_iter].token == i
            {
                let site = &self.graph.sites[id][site_iter];
                let line = site.line;
                let arg_open = site.arg_open;
                let callees: Vec<FnId> = site.callees.clone();
                let mut trans: BTreeSet<usize> = BTreeSet::new();
                for &c in &callees {
                    trans.extend(self.summary[c].iter().copied());
                }
                if emit && !trans.is_empty() {
                    let held: Vec<usize> = live.iter().flat_map(|g| g.2.clone()).collect();
                    let via = callees
                        .iter()
                        .map(|&c| self.table.fns[c].display_name())
                        .collect::<Vec<_>>()
                        .join("|");
                    for from in held {
                        for &to in &trans {
                            self.add_edge(from, to, &rel, line, &via);
                        }
                    }
                }
                if emit {
                    if let Some(open) = arg_open {
                        self.closure_edges(id, &callees, open, &rel, line);
                    }
                }
                // The `lock_*()` helper convention: a let-bound call to a
                // lock-named fn binds its summary as a live guard.
                let toks = &self.ws.files[self.table.fns[id].file].tokens;
                let lock_named = callees
                    .iter()
                    .any(|&c| self.table.fns[c].name.starts_with("lock"));
                if lock_named && !trans.is_empty() {
                    if let Some(name) = binding_for_call(toks, i, lo) {
                        live.retain(|g| g.0 != name);
                        live.push((name, depth, trans.iter().copied().collect(), line));
                    }
                }
            }
            // Bare unresolved call (closure-parameter shape)?
            while ext_iter < self.graph.external_sites[id].len()
                && self.graph.external_sites[id][ext_iter].token < i
            {
                ext_iter += 1;
            }
            if !emit
                && ext_iter < self.graph.external_sites[id].len()
                && self.graph.external_sites[id][ext_iter].token == i
                && self.graph.external_sites[id][ext_iter].bare
            {
                let held: Vec<usize> = live.iter().flat_map(|g| g.2.clone()).collect();
                self.callback_held[id].extend(held);
            }
            i += 1;
        }
    }

    /// For a call site passing a closure literal: everything the closure
    /// acquires (directly or through calls it makes) is reachable while the
    /// callee holds its `callback_held` classes.
    fn closure_edges(&mut self, id: FnId, callees: &[FnId], open: usize, rel: &str, line: u32) {
        let model = &self.ws.files[self.table.fns[id].file];
        let toks = &model.tokens;
        // Find the matching `)` and check for a top-level closure pipe.
        let mut depth = 0isize;
        let mut close = open;
        let mut has_closure = false;
        while let Some(tok) = toks.get(close) {
            match &tok.kind {
                TokenKind::Punct('(') => depth += 1,
                TokenKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Punct('|') if depth == 1 => has_closure = true,
                _ => {}
            }
            close += 1;
        }
        if !has_closure {
            return;
        }
        let mut closure_locks: BTreeSet<usize> = BTreeSet::new();
        for &(token, node, _) in &self.direct[id] {
            if token > open && token < close {
                closure_locks.insert(node);
            }
        }
        for site in &self.graph.sites[id] {
            if site.token > open && site.token < close {
                for &c in &site.callees {
                    closure_locks.extend(self.summary[c].iter().copied());
                }
            }
        }
        if closure_locks.is_empty() {
            return;
        }
        let mut pairs: Vec<(usize, usize, String)> = Vec::new();
        for &callee in callees {
            let name = self.table.fns[callee].display_name();
            for &from in &self.callback_held[callee] {
                for &to in &closure_locks {
                    pairs.push((from, to, format!("closure passed to {name}")));
                }
            }
        }
        for (from, to, via) in pairs {
            self.add_edge(from, to, rel, line, &via);
        }
    }
}

/// The `let [mut] name = ` binding for a call anchored at `site_token`
/// (method name or path-final segment), if any.
fn binding_for_call(toks: &[crate::lexer::Token], site_token: usize, lo: usize) -> Option<String> {
    if site_token > 0 && is_punct(toks.get(site_token - 1), '.') {
        return let_binding_name(toks, site_token - 1, lo);
    }
    // Walk back over `a::b::` path segments.
    let mut j = site_token;
    while j >= 3
        && is_punct(toks.get(j - 1), ':')
        && is_punct(toks.get(j - 2), ':')
        && ident_text(toks.get(j - 3)).is_some()
    {
        j -= 3;
    }
    if j <= lo || !is_punct(toks.get(j - 1), '=') {
        return None;
    }
    let name = ident_text(toks.get(j.wrapping_sub(2)))?.to_string();
    let mut k = j - 2;
    if k > lo && ident_text(toks.get(k - 1)) == Some("mut") {
        k -= 1;
    }
    (k > lo && ident_text(toks.get(k - 1)) == Some("let")).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::scanner::FileModel;
    use crate::symbols::Workspace;

    fn build(files: &[(&str, &str)], manifest: &LockManifest) -> (LockGraph, Vec<String>) {
        let ws = Workspace::from_models(
            files
                .iter()
                .map(|(rel, src)| FileModel::scan(rel, src))
                .collect(),
        );
        let table = SymbolTable::build(&ws);
        let graph = CallGraph::build(&ws, &table);
        let lg = LockGraph::build(&ws, &table, &graph, manifest);
        let rendered: Vec<String> = lg
            .edges
            .iter()
            .map(|e| format!("{}->{}", lg.nodes[e.from].key, lg.nodes[e.to].key))
            .collect();
        (lg, rendered)
    }

    #[test]
    fn intra_function_nesting_produces_an_edge() {
        let manifest = LockManifest::from_entries(vec![
            ("crates/a/src/lib.rs".into(), "self.a".into(), 10),
            ("crates/a/src/lib.rs".into(), "self.b".into(), 20),
        ]);
        let (lg, edges) = build(
            &[(
                "crates/a/src/lib.rs",
                "impl S { fn f(&self) {\n    let g = self.a.lock();\n    let h = self.b.lock();\n} }",
            )],
            &manifest,
        );
        assert_eq!(edges, ["self.a->self.b"]);
        assert!(lg.cycles().is_empty());
        assert!(lg.rank_violations().is_empty());
    }

    #[test]
    fn cross_function_summaries_carry_edges_and_cycles_are_found() {
        let manifest = LockManifest::from_entries(vec![
            ("crates/a/src/lib.rs".into(), "self.a".into(), 10),
            ("crates/a/src/lib.rs".into(), "self.b".into(), 20),
        ]);
        // f holds a and calls g (which takes b); h holds b and calls k
        // (which takes a): a→b and b→a — a cycle across four functions.
        let src = "impl S {\n\
             fn f(&self) { let g = self.a.lock(); self.g(); }\n\
             fn g(&self) { let x = self.b.lock(); }\n\
             fn h(&self) { let g = self.b.lock(); self.k(); }\n\
             fn k(&self) { let x = self.a.lock(); }\n\
        }";
        let (lg, edges) = build(&[("crates/a/src/lib.rs", src)], &manifest);
        assert!(edges.contains(&"self.a->self.b".to_string()), "{edges:?}");
        assert!(edges.contains(&"self.b->self.a".to_string()), "{edges:?}");
        let cycles = lg.cycles();
        assert_eq!(cycles.len(), 1, "{:?}", cycles);
        let described = lg.describe_cycle(&cycles[0]);
        assert!(described.contains("self.a → self.b"), "{described}");
        assert!(described.contains("crates/a/src/lib.rs:"), "{described}");
        // b→a contradicts the declared ranks.
        assert_eq!(lg.rank_violations().len(), 1);
    }

    #[test]
    fn closure_callback_edges_catch_facade_reentry() {
        let manifest = LockManifest::from_entries(vec![
            ("crates/a/src/lib.rs".into(), "self.draw".into(), 10),
            ("crates/a/src/lib.rs".into(), "self.inner".into(), 30),
        ]);
        // serve() invokes its closure parameter while holding draw;
        // get() passes a closure that locks inner (via a helper call).
        let src = "impl S {\n\
             fn serve(&self, mut emit: impl FnMut(usize)) {\n\
                 let g = self.draw.lock();\n\
                 emit(1);\n\
             }\n\
             fn take(&self) { let x = self.inner.lock(); }\n\
             fn get(&self) { self.serve(|i| self.take()); }\n\
        }";
        let (lg, edges) = build(&[("crates/a/src/lib.rs", src)], &manifest);
        assert!(
            edges.contains(&"self.draw->self.inner".to_string()),
            "{edges:?}"
        );
        assert!(lg.rank_violations().is_empty());
        assert!(lg.cycles().is_empty());
    }

    #[test]
    fn lock_named_helper_binds_a_guard() {
        let manifest = LockManifest::from_entries(vec![
            ("crates/a/src/lib.rs".into(), "self.inner".into(), 30),
            ("crates/a/src/lib.rs".into(), "self.stats".into(), 40),
        ]);
        let src = "impl S {\n\
             fn lock_inner(&self) -> Guard { self.inner.lock() }\n\
             fn busy(&self) {\n\
                 let inner = self.lock_inner();\n\
                 let s = self.stats.lock();\n\
             }\n\
        }";
        let (_lg, edges) = build(&[("crates/a/src/lib.rs", src)], &manifest);
        assert!(
            edges.contains(&"self.inner->self.stats".to_string()),
            "{edges:?}"
        );
    }

    #[test]
    fn undeclared_locks_get_file_scoped_keys() {
        let (lg, edges) = build(
            &[(
                "crates/a/src/lib.rs",
                "impl S { fn f(&self) { let g = self.x.lock(); let h = self.y.lock(); } }",
            )],
            &LockManifest::default(),
        );
        assert_eq!(
            edges,
            ["crates/a/src/lib.rs::self.x->crates/a/src/lib.rs::self.y"]
        );
        assert_eq!(lg.undeclared().len(), 2);
        assert!(
            lg.rank_violations().is_empty(),
            "undeclared ranks can't violate"
        );
    }
}
