//! A deliberately tiny TOML subset parser — enough for the analyzer's own
//! data files (`analysis/baseline.toml`, `analysis/locks.toml`,
//! `analysis/seed_policy.toml`) without pulling in a dependency.
//!
//! Supported: `#` comments, `key = value` with string / integer / boolean /
//! inline string-array values, `[table]` headers and `[[array-of-tables]]`
//! headers (single-segment names only). Anything else is a parse error —
//! these files are machine-maintained, so strictness beats leniency.

use std::collections::BTreeMap;

/// A parsed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A basic `"…"` string (no escape processing beyond `\"` and `\\`).
    Str(String),
    /// A decimal integer.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// An inline array of strings: `["a", "b"]`.
    StrArray(Vec<String>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string-array payload, if this is an array.
    pub fn as_str_array(&self) -> Option<&[String]> {
        match self {
            Value::StrArray(a) => Some(a),
            _ => None,
        }
    }
}

/// One `key = value` table.
pub type Table = BTreeMap<String, Value>;

/// A parsed document: top-level keys, named tables, and arrays of tables.
#[derive(Debug, Default)]
pub struct Doc {
    /// Keys above the first header.
    pub root: Table,
    /// `[name]` tables.
    pub tables: BTreeMap<String, Table>,
    /// `[[name]]` arrays, in file order.
    pub arrays: BTreeMap<String, Vec<Table>>,
}

/// Parses a document; errors carry the 1-based line number.
pub fn parse(text: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    // Which table new keys land in: root, a named table, or the last entry
    // of a named array.
    enum Target {
        Root,
        Table(String),
        Array(String),
    }
    let mut target = Target::Root;

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let name = name.trim().to_string();
            doc.arrays
                .entry(name.clone())
                .or_default()
                .push(Table::new());
            target = Target::Array(name);
        } else if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = name.trim().to_string();
            if doc.tables.contains_key(&name) {
                return Err(format!("line {lineno}: duplicate table [{name}]"));
            }
            doc.tables.insert(name.clone(), Table::new());
            target = Target::Table(name);
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim().to_string();
            let value = parse_value(value.trim()).map_err(|e| format!("line {lineno}: {e}"))?;
            let table = match &target {
                Target::Root => &mut doc.root,
                Target::Table(name) => match doc.tables.get_mut(name) {
                    Some(table) => table,
                    None => return Err(format!("line {lineno}: internal: lost table [{name}]")),
                },
                Target::Array(name) => match doc.arrays.get_mut(name).and_then(|v| v.last_mut()) {
                    Some(table) => table,
                    None => return Err(format!("line {lineno}: internal: lost entry [[{name}]]")),
                },
            };
            if table.insert(key.clone(), value).is_some() {
                return Err(format!("line {lineno}: duplicate key `{key}`"));
            }
        } else {
            return Err(format!(
                "line {lineno}: expected `key = value` or a [header]"
            ));
        }
    }
    Ok(doc)
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(text: &str) -> Result<Value, String> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                other => return Err(format!("only string arrays are supported, got {other:?}")),
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{text}`"))?;
        return Ok(Value::Str(
            inner.replace("\\\"", "\"").replace("\\\\", "\\"),
        ));
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unsupported value `{text}`"))
}

/// Splits an inline array body on commas outside strings.
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    parts.push(&text[start..]);
    parts
}

/// Serialises a string as a TOML basic string.
pub fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_values() {
        let doc = parse(
            "version = 1  # comment\n\n[counts]\npanic_surface = 3\n\n[[violation]]\nrule = \"x\"\nok = true\nfns = [\"a\", \"b\"]\n[[violation]]\nrule = \"y # not a comment\"\n",
        )
        .unwrap();
        assert_eq!(doc.root["version"].as_int(), Some(1));
        assert_eq!(doc.tables["counts"]["panic_surface"].as_int(), Some(3));
        let violations = &doc.arrays["violation"];
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0]["rule"].as_str(), Some("x"));
        assert_eq!(
            violations[0]["fns"].as_str_array().unwrap(),
            ["a".to_string(), "b".to_string()]
        );
        assert_eq!(violations[1]["rule"].as_str(), Some("y # not a comment"));
    }

    #[test]
    fn rejects_garbage_with_line_numbers() {
        let err = parse("ok = 1\nnot a kv line\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(parse("dup = 1\ndup = 2\n")
            .unwrap_err()
            .contains("duplicate"));
        assert!(parse("[t]\n[t]\n").unwrap_err().contains("duplicate table"));
        assert!(parse("x = \"unterminated\n")
            .unwrap_err()
            .contains("unterminated"));
    }

    #[test]
    fn quote_roundtrips_specials() {
        let quoted = quote("a \"b\" \\ c");
        let doc = parse(&format!("k = {quoted}\n")).unwrap();
        assert_eq!(doc.root["k"].as_str(), Some("a \"b\" \\ c"));
    }
}
