//! The intra-function project-invariant rules, evaluated over a scanned
//! [`FileModel`], plus the site detectors shared with the interprocedural
//! rules in [`crate::callgraph`].
//!
//! | rule | key | scope |
//! |------|-----|-------|
//! | hot-path allocation | `hot_path_alloc` | fns marked `// analysis: hot_path` |
//! | transitive hot-path allocation | `hot_path_transitive_alloc` | fns *reachable* from hot-path roots (callgraph) |
//! | blocking in hot path | `blocking_in_hot_path` | hot-path roots and everything they reach (callgraph) |
//! | lock discipline | `lock_discipline` | library code |
//! | atomic-ordering audit | `atomic_ordering` | everywhere (incl. tests) |
//! | panic surface | `panic_surface` | library code outside tests |
//! | RNG seed policy | `seed_policy` | library code outside tests |
//! | unsafe scope | `unsafe_scope` | library code outside tests |
//!
//! Every rule honours an inline `// analysis: allow(<key>, reason = "…")`
//! grant on the offending line (or the line directly above it). For the two
//! interprocedural rules an allow on a *call site* also prunes propagation
//! through that edge.

use crate::lexer::{Token, TokenKind};
use crate::manifest::{LockManifest, SeedManifest, UnsafeManifest};
use crate::scanner::{FileContext, FileModel, FnSpan};
use std::fmt;

/// The rule a finding belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Allocation in a `// analysis: hot_path` function.
    HotPathAlloc,
    /// Allocation in a function *reachable* from a hot-path root through the
    /// call graph; findings carry the call-chain witness.
    HotPathTransitiveAlloc,
    /// Lock/condvar/channel blocking, sleeps, or file/stdio I/O in a hot-path
    /// root or anything it reaches.
    BlockingInHotPath,
    /// Nested lock acquisition out of declared order.
    LockDiscipline,
    /// `Ordering::…` without an `// ordering:` justification.
    AtomicOrdering,
    /// `unwrap`/`expect`/`panic!` in non-test library code.
    PanicSurface,
    /// RNG seeding/drawing outside the versioned seed-policy helpers.
    SeedPolicy,
    /// `unsafe` code outside the audited scopes in `analysis/unsafe.toml`.
    UnsafeScope,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 8] = [
        Rule::HotPathAlloc,
        Rule::HotPathTransitiveAlloc,
        Rule::BlockingInHotPath,
        Rule::LockDiscipline,
        Rule::AtomicOrdering,
        Rule::PanicSurface,
        Rule::SeedPolicy,
        Rule::UnsafeScope,
    ];

    /// The stable snake_case key used in `baseline.toml`.
    pub fn key(self) -> &'static str {
        match self {
            Rule::HotPathAlloc => "hot_path_alloc",
            Rule::HotPathTransitiveAlloc => "hot_path_transitive_alloc",
            Rule::BlockingInHotPath => "blocking_in_hot_path",
            Rule::LockDiscipline => "lock_discipline",
            Rule::AtomicOrdering => "atomic_ordering",
            Rule::PanicSurface => "panic_surface",
            Rule::SeedPolicy => "seed_policy",
            Rule::UnsafeScope => "unsafe_scope",
        }
    }

    /// The short key accepted by `allow(…)` directives. The transitive alloc
    /// rule deliberately shares `alloc` with the intra-function rule: one
    /// grant blesses the site no matter how the analyzer reached it.
    pub fn allow_key(self) -> &'static str {
        match self {
            Rule::HotPathAlloc | Rule::HotPathTransitiveAlloc => "alloc",
            Rule::BlockingInHotPath => "blocking",
            Rule::LockDiscipline => "lock",
            Rule::AtomicOrdering => "ordering",
            Rule::PanicSurface => "panic",
            Rule::SeedPolicy => "seed",
            Rule::UnsafeScope => "unsafe",
        }
    }

    /// Parses a `baseline.toml` rule key.
    pub fn from_key(key: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.key() == key)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Enclosing function name (empty at item level).
    pub function: String,
    /// Short token-level detail (`"`.clone()`"`, `"Ordering::SeqCst"`);
    /// part of the baseline fingerprint, so it must not contain line numbers.
    pub detail: String,
    /// Human-readable message.
    pub message: String,
}

impl Finding {
    /// The line-number-free identity used to match baseline entries: rule,
    /// file, enclosing function and token detail. An occurrence ordinal is
    /// appended by the engine when one function repeats the same detail.
    pub fn fingerprint_stem(&self) -> String {
        format!("{}::{}::{}", self.file, self.function, self.detail)
    }
}

/// Evaluates every applicable rule over one file.
pub fn apply_all(
    model: &FileModel,
    locks: &LockManifest,
    seeds: &SeedManifest,
    unsafes: &UnsafeManifest,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    hot_path_alloc(model, &mut findings);
    if model.context == FileContext::Library {
        lock_discipline(model, locks, &mut findings);
        panic_surface(model, &mut findings);
        seed_policy(model, seeds, &mut findings);
        unsafe_scope(model, unsafes, &mut findings);
    }
    atomic_ordering(model, &mut findings);
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

pub(crate) fn is_punct(tok: Option<&Token>, c: char) -> bool {
    matches!(tok.map(|t| &t.kind), Some(TokenKind::Punct(p)) if *p == c)
}

pub(crate) fn ident_text(tok: Option<&Token>) -> Option<&str> {
    match tok {
        Some(t) if t.kind == TokenKind::Ident => Some(t.text.as_str()),
        _ => None,
    }
}

/// Skips a `::<…>` turbofish directly after a method/function name; returns
/// the index where the argument list's `(` would sit (i.e. `after_name` when
/// there is no turbofish). Handles nested generics (`::<Vec<Vec<f32>>>`) and
/// `->` inside `Fn(…) -> T` bounds.
pub(crate) fn skip_turbofish(toks: &[Token], after_name: usize) -> usize {
    if !(is_punct(toks.get(after_name), ':')
        && is_punct(toks.get(after_name + 1), ':')
        && is_punct(toks.get(after_name + 2), '<'))
    {
        return after_name;
    }
    let mut depth = 0isize;
    let mut j = after_name + 2;
    while let Some(tok) = toks.get(j) {
        match &tok.kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') => {
                let arrow = is_punct(toks.get(j.wrapping_sub(1)), '-');
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    after_name
}

/// One detector hit inside a token range.
#[derive(Debug, Clone)]
pub(crate) struct Site {
    /// 1-based source line.
    pub line: u32,
    /// Line-number-free description (`".clone()"`, `"Vec::new"`).
    pub detail: String,
}

// ---------------------------------------------------------------------------
// Rule 1: hot-path allocation
// ---------------------------------------------------------------------------

/// Methods that allocate (called as `.name(…)`).
const ALLOC_METHODS: [&str; 7] = [
    "clone",
    "to_vec",
    "collect",
    "to_string",
    "to_owned",
    "into_boxed_slice",
    "into_vec",
];
/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];
/// Types whose `new` / `with_capacity` / `from` constructors allocate.
const ALLOC_TYPES: [&str; 12] = [
    "Vec", "Box", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque", "Rc", "Arc",
    "Bytes", "BytesMut",
];
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];

/// Every allocation-pattern hit inside `range` (allow grants NOT applied —
/// callers filter, so intra and transitive rules share one detector).
pub(crate) fn alloc_sites(model: &FileModel, range: std::ops::Range<usize>) -> Vec<Site> {
    let toks = &model.tokens;
    let mut out = Vec::new();
    for i in range {
        let tok = &toks[i];
        let detail = if is_punct(Some(tok), '.') {
            match ident_text(toks.get(i + 1)) {
                Some(m)
                    if ALLOC_METHODS.contains(&m)
                        && is_punct(toks.get(skip_turbofish(toks, i + 2)), '(') =>
                {
                    Some(format!(".{m}()"))
                }
                _ => None,
            }
        } else if ident_text(Some(tok)).is_some_and(|t| ALLOC_MACROS.contains(&t))
            && is_punct(toks.get(i + 1), '!')
        {
            Some(format!("{}!", tok.text))
        } else if ident_text(Some(tok)).is_some_and(|t| ALLOC_TYPES.contains(&t))
            && is_punct(toks.get(i + 1), ':')
            && is_punct(toks.get(i + 2), ':')
            && ident_text(toks.get(i + 3)).is_some_and(|c| ALLOC_CTORS.contains(&c))
            && is_punct(toks.get(skip_turbofish(toks, i + 4)), '(')
        {
            Some(format!("{}::{}", tok.text, toks[i + 3].text))
        } else {
            None
        };
        if let Some(detail) = detail {
            out.push(Site {
                line: tok.line,
                detail,
            });
        }
    }
    out
}

/// Methods that block the calling thread when invoked with no arguments
/// (lock acquisition, thread join, blocking channel receive).
const BLOCKING_METHODS_NULLARY: [&str; 5] = ["lock", "read", "write", "join", "recv"];
/// Methods that block regardless of arguments (condvar waits, timed channel
/// ops, bounded-channel sends, thread parking).
const BLOCKING_METHODS_ANY: [&str; 9] = [
    "wait",
    "wait_for",
    "wait_timeout",
    "wait_while",
    "wait_until",
    "recv_timeout",
    "recv_many",
    "send",
    "park",
];
/// Free/path functions that block or do file I/O.
const BLOCKING_FREE_FNS: [&str; 4] = ["sleep", "sleep_ms", "yield_now", "read_to_string"];
/// Stdio macros: line-buffered writes behind a global lock.
const BLOCKING_MACROS: [&str; 5] = ["println", "print", "eprintln", "eprint", "dbg"];

/// Every blocking-pattern hit inside `range` (allow grants NOT applied).
pub(crate) fn blocking_sites(model: &FileModel, range: std::ops::Range<usize>) -> Vec<Site> {
    let toks = &model.tokens;
    let mut out = Vec::new();
    for i in range {
        let tok = &toks[i];
        let detail = if is_punct(Some(tok), '.') {
            match ident_text(toks.get(i + 1)) {
                Some(m) if BLOCKING_METHODS_NULLARY.contains(&m) => {
                    let open = skip_turbofish(toks, i + 2);
                    (is_punct(toks.get(open), '(') && is_punct(toks.get(open + 1), ')'))
                        .then(|| format!(".{m}()"))
                }
                Some(m) if BLOCKING_METHODS_ANY.contains(&m) => {
                    is_punct(toks.get(skip_turbofish(toks, i + 2)), '(').then(|| format!(".{m}(…)"))
                }
                _ => None,
            }
        } else if tok.kind == TokenKind::Ident {
            let next = skip_turbofish(toks, i + 1);
            if is_punct(toks.get(i + 1), '!') && BLOCKING_MACROS.contains(&tok.text.as_str()) {
                Some(format!("{}!", tok.text))
            } else if is_punct(toks.get(next), '(')
                && BLOCKING_FREE_FNS.contains(&tok.text.as_str())
                && !is_punct(toks.get(i.wrapping_sub(1)), '.')
            {
                Some(format!("{}()", tok.text))
            } else if is_punct(toks.get(next), '(')
                && i >= 2
                && is_punct(toks.get(i - 1), ':')
                && is_punct(toks.get(i - 2), ':')
                && ident_text(toks.get(i.wrapping_sub(3))).is_some_and(|t| t == "File" || t == "fs")
                && matches!(
                    tok.text.as_str(),
                    "open" | "create" | "read" | "write" | "read_to_string" | "remove_file"
                )
            {
                Some(format!("{}::{}", toks[i - 3].text, tok.text))
            } else {
                None
            }
        } else {
            None
        };
        if let Some(detail) = detail {
            out.push(Site {
                line: tok.line,
                detail,
            });
        }
    }
    out
}

fn hot_path_alloc(model: &FileModel, findings: &mut Vec<Finding>) {
    for span in model.functions.iter().filter(|f| f.hot_path) {
        for site in alloc_sites(model, span.body.clone()) {
            if model.allow_for(site.line, "alloc").is_some() {
                continue;
            }
            let detail = &site.detail;
            findings.push(Finding {
                rule: Rule::HotPathAlloc,
                file: model.rel_path.clone(),
                line: site.line,
                function: span.name.clone(),
                detail: detail.clone(),
                message: format!(
                    "allocating call `{detail}` inside hot-path fn `{}` (add `// analysis: allow(alloc, reason = …)` if deliberate)",
                    span.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: lock discipline
// ---------------------------------------------------------------------------

/// A live guard binding inside one function walk.
struct Guard {
    name: String,
    depth: isize,
    rank: Option<i64>,
    receiver: String,
    line: u32,
}

fn lock_discipline(model: &FileModel, manifest: &LockManifest, findings: &mut Vec<Finding>) {
    for span in model.functions.iter().filter(|f| !f.is_test) {
        lock_walk(model, span, manifest, findings);
    }
}

fn lock_walk(
    model: &FileModel,
    span: &FnSpan,
    manifest: &LockManifest,
    findings: &mut Vec<Finding>,
) {
    const ACQUIRERS: [&str; 3] = ["lock", "read", "write"];
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: isize = 0;
    let toks = &model.tokens;
    for i in span.body.clone() {
        match &toks[i].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            // `drop(name)` releases a guard early.
            TokenKind::Ident if toks[i].text == "drop" && is_punct(toks.get(i + 1), '(') => {
                if let Some(name) = ident_text(toks.get(i + 2)) {
                    if is_punct(toks.get(i + 3), ')') {
                        guards.retain(|g| g.name != name);
                    }
                }
            }
            // `.lock()` / `.read()` / `.write()` with empty parens.
            TokenKind::Punct('.')
                if ident_text(toks.get(i + 1)).is_some_and(|m| ACQUIRERS.contains(&m))
                    && is_punct(toks.get(i + 2), '(')
                    && is_punct(toks.get(i + 3), ')') =>
            {
                let method = toks[i + 1].text.clone();
                let line = toks[i + 1].line;
                let receiver = receiver_chain(toks, i);
                let rank = manifest.rank_of(&model.rel_path, &receiver);
                if let Some(conflict) = guards.iter().find(|g| match (g.rank, rank) {
                    (Some(held), Some(new)) => new <= held,
                    _ => true,
                }) {
                    if model.allow_for(line, "lock").is_none() {
                        let why = match (conflict.rank, rank) {
                            (Some(_), Some(_)) => {
                                "violates the declared lock order in analysis/locks.toml"
                            }
                            _ => "no order for this pair is declared in analysis/locks.toml",
                        };
                        findings.push(Finding {
                            rule: Rule::LockDiscipline,
                            file: model.rel_path.clone(),
                            line,
                            function: span.name.clone(),
                            detail: format!("{receiver}.{method}() under {}", conflict.receiver),
                            message: format!(
                                "`{receiver}.{method}()` in fn `{}` while guard `{}` ({}, line {}) is live — {why}",
                                span.name, conflict.name, conflict.receiver, conflict.line
                            ),
                        });
                    }
                }
                // Register a guard when this is a `let name = <recv>.lock();`
                // statement (acquisition result bound and kept).
                if let Some(name) = let_binding_name(toks, i, span.body.start) {
                    if is_punct(toks.get(i + 4), ';') {
                        guards.retain(|g| g.name != name);
                        guards.push(Guard {
                            name,
                            depth,
                            rank,
                            receiver,
                            line,
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

/// Renders the receiver chain ending at the `.` token `dot`: `self.draw`,
/// `self.shards[_]`, `slot`. Returns `"<expr>"` when the receiver is not a
/// simple field/index chain.
pub(crate) fn receiver_chain(toks: &[Token], dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot;
    loop {
        if j == 0 {
            break;
        }
        match &toks[j - 1].kind {
            TokenKind::Ident => {
                parts.push(toks[j - 1].text.clone());
                j -= 1;
                if j > 0 && is_punct(toks.get(j - 1), '.') {
                    j -= 1;
                    continue;
                }
                break;
            }
            TokenKind::Punct(']') => {
                // Skip the index expression back to its `[`.
                let mut depth = 0isize;
                let mut k = j - 1;
                loop {
                    match &toks[k].kind {
                        TokenKind::Punct(']') => depth += 1,
                        TokenKind::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                parts.push("[_]".to_string());
                j = k;
            }
            _ => break,
        }
    }
    if parts.is_empty() {
        return "<expr>".to_string();
    }
    parts.reverse();
    let mut out = String::new();
    for part in parts {
        if part == "[_]" {
            out.push_str("[_]");
        } else {
            if !out.is_empty() {
                out.push('.');
            }
            out.push_str(&part);
        }
    }
    out
}

/// If the statement containing the acquisition at `dot` is a
/// `let [mut] name = <receiver>…` binding, returns the bound name.
pub(crate) fn let_binding_name(toks: &[Token], dot: usize, lo: usize) -> Option<String> {
    // Walk back over the receiver chain to its start.
    let mut j = dot;
    loop {
        if j == 0 || j <= lo {
            break;
        }
        match &toks[j - 1].kind {
            TokenKind::Ident => {
                j -= 1;
                if j > lo && is_punct(toks.get(j - 1), '.') {
                    j -= 1;
                    continue;
                }
                break;
            }
            TokenKind::Punct(']') => {
                let mut depth = 0isize;
                let mut k = j - 1;
                loop {
                    match &toks[k].kind {
                        TokenKind::Punct(']') => depth += 1,
                        TokenKind::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                j = k;
            }
            _ => break,
        }
    }
    // Expect `… let [mut] name = ` right before the receiver.
    if j <= lo || !is_punct(toks.get(j - 1), '=') {
        return None;
    }
    let name_idx = j - 2;
    let name = ident_text(toks.get(name_idx))?;
    let mut k = name_idx;
    if k > lo && ident_text(toks.get(k - 1)) == Some("mut") {
        k -= 1;
    }
    if k > lo && ident_text(toks.get(k - 1)) == Some("let") {
        Some(name.to_string())
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Rule 3: atomic-ordering audit
// ---------------------------------------------------------------------------

const ATOMIC_VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn atomic_ordering(model: &FileModel, findings: &mut Vec<Finding>) {
    // All `Ordering::<atomic variant>` site lines first, so one justification
    // comment can cover a contiguous run of sites.
    let mut sites: Vec<(usize, u32, String)> = Vec::new();
    for i in 0..model.tokens.len() {
        if ident_text(model.tokens.get(i)) == Some("Ordering")
            && is_punct(model.tokens.get(i + 1), ':')
            && is_punct(model.tokens.get(i + 2), ':')
        {
            if let Some(variant) = ident_text(model.tokens.get(i + 3)) {
                if ATOMIC_VARIANTS.contains(&variant) {
                    sites.push((i, model.tokens[i + 3].line, format!("Ordering::{variant}")));
                }
            }
        }
    }
    let site_lines: Vec<u32> = sites.iter().map(|&(_, l, _)| l).collect();
    let comment_only_lines: Vec<u32> = comment_only_lines(model);
    for (i, line, detail) in sites {
        if ordering_covered(model, line, &site_lines, &comment_only_lines) {
            continue;
        }
        if model.allow_for(line, "ordering").is_some() {
            continue;
        }
        findings.push(Finding {
            rule: Rule::AtomicOrdering,
            file: model.rel_path.clone(),
            line,
            function: model
                .enclosing_fn(i)
                .map(|f| f.name.clone())
                .unwrap_or_default(),
            detail: detail.clone(),
            message: format!(
                "`{detail}` lacks an `// ordering:` justification on this line or directly above"
            ),
        });
    }
}

/// Lines that contain a comment and no code token.
fn comment_only_lines(model: &FileModel) -> Vec<u32> {
    let mut code: Vec<u32> = model.tokens.iter().map(|t| t.line).collect();
    code.dedup();
    let mut out = Vec::new();
    for c in &model.comments {
        for l in c.line..=c.end_line {
            if code.binary_search(&l).is_err() {
                out.push(l);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// A site at `line` is covered by a justification on the same line, or by one
/// above the contiguous run of sites/comment-only lines containing it.
fn ordering_covered(
    model: &FileModel,
    line: u32,
    site_lines: &[u32],
    comment_lines: &[u32],
) -> bool {
    let has_directive = |l: u32| model.directives.ordering_lines.contains(&l);
    if has_directive(line) {
        return true;
    }
    // Walk up through the run: prior lines that are themselves sites or
    // comment-only lines stay in the run.
    let mut l = line;
    while l > 1 {
        let prev = l - 1;
        if has_directive(prev) {
            return true;
        }
        if site_lines.contains(&prev) || comment_lines.binary_search(&prev).is_ok() {
            l = prev;
        } else {
            return false;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 4: panic surface
// ---------------------------------------------------------------------------

const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn panic_surface(model: &FileModel, findings: &mut Vec<Finding>) {
    for i in 0..model.tokens.len() {
        if model.in_test_range(i) {
            continue;
        }
        let tok = &model.tokens[i];
        let detail = if is_punct(Some(tok), '.') {
            match ident_text(model.tokens.get(i + 1)) {
                Some(m) if PANIC_METHODS.contains(&m) && is_punct(model.tokens.get(i + 2), '(') => {
                    Some((format!(".{m}()"), model.tokens[i + 1].line))
                }
                _ => None,
            }
        } else if ident_text(Some(tok)).is_some_and(|t| PANIC_MACROS.contains(&t))
            && !tok.raw
            && is_punct(model.tokens.get(i + 1), '!')
        {
            Some((format!("{}!", tok.text), tok.line))
        } else {
            None
        };
        let Some((detail, line)) = detail else {
            continue;
        };
        if model.allow_for(line, "panic").is_some() {
            continue;
        }
        let function = model
            .enclosing_fn(i)
            .map(|f| f.name.clone())
            .unwrap_or_default();
        findings.push(Finding {
            rule: Rule::PanicSurface,
            file: model.rel_path.clone(),
            line,
            function: function.clone(),
            detail: detail.clone(),
            message: format!(
                "`{detail}` in library code{} — return a typed error or add `// analysis: allow(panic, reason = …)`",
                if function.is_empty() {
                    String::new()
                } else {
                    format!(" (fn `{function}`)")
                }
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule 5: RNG seed policy
// ---------------------------------------------------------------------------

const SEED_FNS: [&str; 3] = ["seed_from_u64", "from_entropy", "from_seed"];

fn seed_policy(model: &FileModel, manifest: &SeedManifest, findings: &mut Vec<Finding>) {
    let mut seen_lines: Vec<(u32, String)> = Vec::new();
    for i in 0..model.tokens.len() {
        if model.in_test_range(i) {
            continue;
        }
        let tok = &model.tokens[i];
        let hit = if ident_text(Some(tok)) == Some("ChaCha8Rng")
            && is_punct(model.tokens.get(i + 1), ':')
            && is_punct(model.tokens.get(i + 2), ':')
        {
            Some(("ChaCha8Rng::".to_string(), tok.line))
        } else if ident_text(Some(tok)).is_some_and(|t| SEED_FNS.contains(&t))
            && is_punct(model.tokens.get(i + 1), '(')
        {
            Some((format!("{}()", tok.text), tok.line))
        } else if is_punct(Some(tok), '.')
            && ident_text(model.tokens.get(i + 1)) == Some("gen_range")
            && is_punct(model.tokens.get(i + 2), '(')
        {
            Some((".gen_range()".to_string(), model.tokens[i + 1].line))
        } else {
            None
        };
        let Some((detail, line)) = hit else { continue };
        if seen_lines.iter().any(|(l, _)| *l == line) {
            continue; // `ChaCha8Rng::seed_from_u64(…)` must count once, not per pattern
        }
        seen_lines.push((line, detail.clone()));
        let function = model
            .enclosing_fn(i)
            .map(|f| f.name.clone())
            .unwrap_or_default();
        if manifest.allows(&model.rel_path, &function) {
            continue;
        }
        if model.allow_for(line, "seed").is_some() {
            continue;
        }
        findings.push(Finding {
            rule: Rule::SeedPolicy,
            file: model.rel_path.clone(),
            line,
            function: function.clone(),
            detail: detail.clone(),
            message: format!(
                "RNG policy site `{detail}`{} is outside the versioned seed-policy helpers (declare it in analysis/seed_policy.toml or add `// analysis: allow(seed, reason = …)`)",
                if function.is_empty() {
                    String::new()
                } else {
                    format!(" in fn `{function}`")
                }
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule 6: unsafe scope
// ---------------------------------------------------------------------------

fn unsafe_scope(model: &FileModel, manifest: &UnsafeManifest, findings: &mut Vec<Finding>) {
    if manifest.allows(&model.rel_path) {
        return; // the whole file lies inside an audited scope
    }
    for i in 0..model.tokens.len() {
        if model.in_test_range(i) {
            continue;
        }
        let tok = &model.tokens[i];
        if tok.kind != TokenKind::Ident || tok.text != "unsafe" || tok.raw {
            continue;
        }
        // Classify the construct for the (line-free) fingerprint detail.
        let detail = match ident_text(model.tokens.get(i + 1)) {
            Some("fn") => "unsafe fn",
            Some("impl") => "unsafe impl",
            Some("trait") => "unsafe trait",
            _ if is_punct(model.tokens.get(i + 1), '{') => "unsafe {…}",
            _ => "unsafe",
        };
        if model.allow_for(tok.line, "unsafe").is_some() {
            continue;
        }
        let function = model
            .enclosing_fn(i)
            .map(|f| f.name.clone())
            .unwrap_or_default();
        findings.push(Finding {
            rule: Rule::UnsafeScope,
            file: model.rel_path.clone(),
            line: tok.line,
            function: function.clone(),
            detail: detail.to_string(),
            message: format!(
                "`{detail}`{} is outside the audited unsafe scopes (move it under a prefix declared in analysis/unsafe.toml or add `// analysis: allow(unsafe, reason = …)`)",
                if function.is_empty() {
                    String::new()
                } else {
                    format!(" in fn `{function}`")
                }
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{LockManifest, SeedManifest, UnsafeManifest};

    fn check(src: &str) -> Vec<Finding> {
        let model = FileModel::scan("crates/x/src/lib.rs", src);
        apply_all(
            &model,
            &LockManifest::default(),
            &SeedManifest::default(),
            &UnsafeManifest::default(),
        )
    }

    #[test]
    fn hot_path_allocs_are_flagged_and_allows_honoured() {
        let src = "\
// analysis: hot_path
fn hot(xs: &[u32]) -> usize {
    let v = Vec::with_capacity(4);
    let c = xs.to_vec();
    let ok = xs.clone(); // analysis: allow(alloc, reason = \"documented\")
    v.len() + c.len() + ok.len()
}
fn cold(xs: &[u32]) -> Vec<u32> { xs.to_vec() }
";
        let findings = check(src);
        let alloc: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == Rule::HotPathAlloc)
            .collect();
        assert_eq!(alloc.len(), 2);
        assert_eq!(alloc[0].detail, "Vec::with_capacity");
        assert_eq!(alloc[1].detail, ".to_vec()");
        assert!(alloc.iter().all(|f| f.function == "hot"));
    }

    #[test]
    fn ordering_requires_justification_with_run_coverage() {
        let src = "\
use std::sync::atomic::Ordering;
fn f(a: &std::sync::atomic::AtomicUsize) {
    a.load(Ordering::SeqCst);
    // ordering: Relaxed counters, read-only snapshot
    a.load(Ordering::Relaxed);
    a.load(Ordering::Relaxed);
    a.store(1, Ordering::Release); // ordering: publishes the snapshot
}
";
        let findings = check(src);
        let ordering: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == Rule::AtomicOrdering)
            .collect();
        assert_eq!(ordering.len(), 1, "{ordering:?}");
        assert_eq!(ordering[0].line, 3);
        assert_eq!(ordering[0].detail, "Ordering::SeqCst");
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic_site() {
        let findings = check("fn f(a: u32, b: u32) -> std::cmp::Ordering { a.cmp(&b).then(std::cmp::Ordering::Less) }");
        assert!(findings.iter().all(|f| f.rule != Rule::AtomicOrdering));
    }

    #[test]
    fn panic_surface_skips_tests_and_allows() {
        let src = "\
fn lib(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    // analysis: allow(panic, reason = \"infallible by construction\")
    let b = v.expect(\"fine\");
    if a + b > 3 { panic!(\"boom\") }
    a
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { None::<u32>.unwrap(); panic!(\"test-only\"); }
}
";
        let findings = check(src);
        let panics: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == Rule::PanicSurface)
            .collect();
        assert_eq!(panics.len(), 2, "{panics:?}");
        assert_eq!(panics[0].detail, ".unwrap()");
        assert_eq!(panics[1].detail, "panic!");
    }

    #[test]
    fn seed_policy_respects_manifest_and_test_scope() {
        let src = "\
use rand_chacha::ChaCha8Rng;
fn blessed(seed: u64) -> ChaCha8Rng { ChaCha8Rng::seed_from_u64(seed) }
fn rogue(seed: u64) -> ChaCha8Rng { ChaCha8Rng::seed_from_u64(seed) }
fn draw(rng: &mut ChaCha8Rng) -> u32 { rng.gen_range(0..4) }
";
        let model = FileModel::scan("crates/x/src/lib.rs", src);
        let seeds = SeedManifest::from_entries(vec![(
            "crates/x/src/lib.rs".to_string(),
            vec!["blessed".to_string()],
        )]);
        let findings = apply_all(
            &model,
            &LockManifest::default(),
            &seeds,
            &UnsafeManifest::default(),
        );
        let seeds: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == Rule::SeedPolicy)
            .collect();
        assert_eq!(seeds.len(), 2, "{seeds:?}");
        assert_eq!(seeds[0].function, "rogue");
        assert_eq!(seeds[1].function, "draw");
    }

    #[test]
    fn second_lock_while_guard_live_is_flagged_without_manifest() {
        let src = "\
fn f(&self) {
    let guard = self.draw.lock();
    let second = self.wait.lock();
    drop(second);
    drop(guard);
    let fine = self.wait.lock();
    drop(fine);
}
";
        let findings = check(src);
        let locks: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == Rule::LockDiscipline)
            .collect();
        assert_eq!(locks.len(), 1, "{locks:?}");
        assert_eq!(locks[0].line, 3);
        assert!(locks[0].detail.contains("self.wait.lock() under self.draw"));
    }

    #[test]
    fn declared_lock_order_permits_inner_after_outer() {
        let src = "\
fn f(&self) {
    let guard = self.draw.lock();
    let inner = self.wait.lock();
    drop(inner);
    drop(guard);
}
fn g(&self) {
    let guard = self.wait.lock();
    let outer = self.draw.lock();
}
";
        let model = FileModel::scan("crates/x/src/lib.rs", src);
        let locks = LockManifest::from_entries(vec![
            ("crates/x/src/lib.rs".into(), "self.draw".into(), 10),
            ("crates/x/src/lib.rs".into(), "self.wait".into(), 20),
        ]);
        let findings = apply_all(
            &model,
            &locks,
            &SeedManifest::default(),
            &UnsafeManifest::default(),
        );
        let lock_findings: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == Rule::LockDiscipline)
            .collect();
        assert_eq!(lock_findings.len(), 1, "{lock_findings:?}");
        assert_eq!(lock_findings[0].function, "g");
        assert_eq!(lock_findings[0].line, 9);
    }

    #[test]
    fn scope_exit_releases_guards() {
        let src = "\
fn f(&self) {
    {
        let guard = self.a.lock();
    }
    let other = self.b.lock();
}
";
        let findings = check(src);
        assert!(findings.iter().all(|f| f.rule != Rule::LockDiscipline));
    }

    #[test]
    fn unsafe_outside_audited_scopes_is_flagged_with_construct_detail() {
        let src = "\
unsafe fn raw(p: *const f32) -> f32 { *p }
pub fn wrap(p: *const f32) -> f32 {
    unsafe { raw(p) }
}
unsafe impl Send for Holder {}
fn blessed(p: *const f32) -> f32 {
    // analysis: allow(unsafe, reason = \"bounds checked by caller contract\")
    unsafe { raw(p) }
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { unsafe { std::hint::unreachable_unchecked() } }
}
";
        let findings = check(src);
        let unsafes: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == Rule::UnsafeScope)
            .collect();
        assert_eq!(unsafes.len(), 3, "{unsafes:?}");
        assert_eq!(unsafes[0].detail, "unsafe fn");
        assert_eq!(unsafes[1].detail, "unsafe {…}");
        assert_eq!(unsafes[1].function, "wrap");
        assert_eq!(unsafes[2].detail, "unsafe impl");
    }

    #[test]
    fn audited_prefix_silences_the_unsafe_rule_for_the_whole_file() {
        let src = "unsafe fn kernel(p: *const f32) -> f32 { unsafe { *p } }";
        let model = FileModel::scan("crates/nn/src/simd/avx2.rs", src);
        let unsafes = UnsafeManifest::from_prefixes(vec!["crates/nn/src/simd/".to_string()]);
        let findings = apply_all(
            &model,
            &LockManifest::default(),
            &SeedManifest::default(),
            &unsafes,
        );
        assert!(
            findings.iter().all(|f| f.rule != Rule::UnsafeScope),
            "{findings:?}"
        );
        // The same source outside the prefix is flagged.
        let rogue = FileModel::scan("crates/nn/src/mlp.rs", src);
        let rogue_findings = apply_all(
            &rogue,
            &LockManifest::default(),
            &SeedManifest::default(),
            &unsafes,
        );
        assert!(rogue_findings.iter().any(|f| f.rule == Rule::UnsafeScope));
    }

    #[test]
    fn indexed_receivers_render_with_index_placeholder() {
        let src = "\
fn f(&self, shard: usize) {
    let guard = self.shards[shard].lock();
    let second = self.shards[shard + 1].lock();
}
";
        let findings = check(src);
        let locks: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == Rule::LockDiscipline)
            .collect();
        assert_eq!(locks.len(), 1);
        assert!(locks[0]
            .detail
            .contains("self.shards[_].lock() under self.shards[_]"));
    }
}
