//! The workspace call graph: call sites resolved against the symbol table by
//! receiver-type heuristics, hot-path constraint propagation with chain
//! witnesses, and the two interprocedural rules
//! (`hot_path_transitive_alloc`, `blocking_in_hot_path`).
//!
//! Resolution is deliberately heuristic — there is no type inference — but
//! every shortcut errs toward *explicit accounting* rather than silent
//! drops:
//!
//! * `self.method()` resolves through the enclosing `impl` block's owner;
//! * `Type::method()` / `Self::method()` resolve by owner, with trait names
//!   fanning out to every implementation (plus provided defaults);
//! * `self.field.method()` resolves through the field's declared type,
//!   including `dyn Trait` fields (the enclosing type itself is excluded
//!   from that fan-out: a container is assumed not to contain itself);
//! * a method on an unknown receiver resolves only when exactly one
//!   workspace fn bears the name and the name is not a common std method;
//!   otherwise it is recorded in [`CallGraph::ambiguous`] (several
//!   candidates) or [`CallGraph::externals`] (none) and contributes no edge;
//! * free calls prefer same-file, then same-crate, then workspace-unique
//!   free fns; `Type::method` references passed as values (no call parens)
//!   still produce edges when the target exists.

use crate::rules::{
    alloc_sites, blocking_sites, ident_text, is_punct, receiver_chain, skip_turbofish, Finding,
    Rule,
};
use crate::scanner::FileModel;
use crate::symbols::{FnId, SymbolTable, Workspace};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One resolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct ResolvedSite {
    /// Token index the call anchors to (the method/function name).
    pub token: usize,
    /// Token index of the argument list's `(`, when the site is an actual
    /// call (`None` for `Type::method` value references).
    pub arg_open: Option<usize>,
    /// 1-based source line.
    pub line: u32,
    /// Every candidate callee.
    pub callees: Vec<FnId>,
}

/// A call that resolved to nothing inside the workspace.
#[derive(Debug, Clone)]
pub struct ExternalSite {
    /// Token index of the called name.
    pub token: usize,
    /// 1-based source line.
    pub line: u32,
    /// Rendered name (`".collect()"`, `"std::fs::read_to_string"`).
    pub name: String,
    /// True for a bare lowercase single-segment call — the shape a closure
    /// or fn-parameter invocation takes (`emit(item)`).
    pub bare: bool,
}

/// One deduplicated caller→callee edge.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    /// The callee.
    pub to: FnId,
    /// Line of the (first) call site producing this edge.
    pub line: u32,
}

/// The resolved workspace call graph.
pub struct CallGraph {
    /// Deduplicated edges per caller (indexed by `FnId`).
    pub edges: Vec<Vec<CallEdge>>,
    /// Every resolved call site per caller, in token order (the lock-graph
    /// walk needs positions, not just edges).
    pub sites: Vec<Vec<ResolvedSite>>,
    /// Unresolved call sites per caller.
    pub external_sites: Vec<Vec<ExternalSite>>,
    /// Workspace-wide tally of unresolved names.
    pub externals: BTreeMap<String, usize>,
    /// Workspace-wide tally of ambiguous names (several candidates, no
    /// receiver type to pick one — explicitly *not* edges).
    pub ambiguous: BTreeMap<String, usize>,
}

/// Methods whose names are overwhelmingly std-library calls; the
/// unique-name fallback must never bind them to a workspace fn that happens
/// to share the name. (Receiver-typed resolution is unaffected: a
/// `self.shards[_].len()` with a known field type still resolves.)
const COMMON_STD_METHODS: &[&str] = &[
    "push",
    "push_str",
    "pop",
    "insert",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "cloned",
    "copied",
    "extend",
    "extend_from_slice",
    "remove",
    "contains",
    "contains_key",
    "sort",
    "sort_by",
    "sort_unstable",
    "clear",
    "take",
    "set",
    "replace",
    "min",
    "max",
    "abs",
    "sqrt",
    "exp",
    "ln",
    "floor",
    "ceil",
    "round",
    "powi",
    "to_string",
    "to_vec",
    "to_owned",
    "drain",
    "split",
    "splitn",
    "join",
    "fill",
    "swap",
    "swap_remove",
    "last",
    "first",
    "find",
    "position",
    "resize",
    "truncate",
    "retain",
    "map",
    "filter",
    "fold",
    "flat_map",
    "any",
    "all",
    "sum",
    "product",
    "count",
    "zip",
    "rev",
    "chain",
    "chunks",
    "windows",
    "enumerate",
    "collect",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_str",
    "borrow",
    "borrow_mut",
    "entry",
    "or_default",
    "or_insert",
    "keys",
    "values",
    "starts_with",
    "ends_with",
    "trim",
    "parse",
    "chars",
    "bytes",
    "copy_from_slice",
    "store",
    "load",
    "fetch_add",
    "fetch_sub",
    "compare_exchange",
    "min_by_key",
    "max_by_key",
    "saturating_sub",
    "saturating_add",
    "wrapping_add",
    "checked_sub",
    "rem_euclid",
    "to_le_bytes",
    "from_le_bytes",
];

/// Not callables even when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "ref", "else", "let",
    "mut", "pub", "use", "where", "unsafe", "dyn", "break", "continue", "struct", "enum", "trait",
    "mod", "const", "static", "fn", "impl",
];

/// First path segments that always mean "outside the workspace".
const EXTERNAL_PATH_ROOTS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "parking_lot",
    "crossbeam",
    "crossbeam_utils",
    "rand",
    "rand_chacha",
    "rayon",
    "libc",
    "serde",
];

enum Resolution {
    Edges(Vec<FnId>),
    External(String),
    Ambiguous(String),
    Ignore,
}

impl CallGraph {
    /// Resolves every call site in the workspace.
    pub fn build(ws: &Workspace, table: &SymbolTable) -> CallGraph {
        let mut graph = CallGraph {
            edges: vec![Vec::new(); table.fns.len()],
            sites: vec![Vec::new(); table.fns.len()],
            external_sites: vec![Vec::new(); table.fns.len()],
            externals: BTreeMap::new(),
            ambiguous: BTreeMap::new(),
        };
        for id in 0..table.fns.len() {
            if table.fns[id].has_body {
                graph.resolve_fn(ws, table, id);
            }
        }
        graph
    }

    fn resolve_fn(&mut self, ws: &Workspace, table: &SymbolTable, id: FnId) {
        let sym = &table.fns[id];
        let model = &ws.files[sym.file];
        let span = &model.functions[sym.span];
        let toks = &model.tokens;
        let mut i = span.body.start;
        while i < span.body.end {
            // `.method(…)` — possibly with a turbofish.
            if is_punct(toks.get(i), '.') {
                if let Some(m) = ident_text(toks.get(i + 1)) {
                    let open = skip_turbofish(toks, i + 2);
                    if is_punct(toks.get(open), '(') {
                        let line = toks[i + 1].line;
                        let res = self.resolve_method(table, id, model, i, m);
                        self.record(table, id, i + 1, Some(open), line, res);
                        i = open + 1;
                        continue;
                    }
                }
                i += 1;
                continue;
            }
            let Some(name) = ident_text(toks.get(i)) else {
                i += 1;
                continue;
            };
            if toks[i].raw || CALL_KEYWORDS.contains(&name) {
                i += 1;
                continue;
            }
            // `Type::method` used as a value (no call parens): still an edge
            // when it names a real workspace method.
            let path_head = is_punct(toks.get(i + 1), ':')
                && is_punct(toks.get(i + 2), ':')
                && !is_punct(toks.get(i.wrapping_sub(1)), ':');
            if path_head {
                if let Some(target) = ident_text(toks.get(i + 3)) {
                    let after = skip_turbofish(toks, i + 4);
                    let named_owner = table.type_names.contains(name)
                        || table.trait_names.contains(name)
                        || name == "Self";
                    if !is_punct(toks.get(after), '(') && named_owner && !toks[i + 3].raw {
                        let owner = if name == "Self" {
                            sym.owner.clone()
                        } else {
                            Some(name.to_string())
                        };
                        if let Some(owner) = &owner {
                            let callees =
                                filter_candidates(table, id, table.dispatch(owner, target, None));
                            if !callees.is_empty() {
                                let line = toks[i + 3].line;
                                self.record(
                                    table,
                                    id,
                                    i + 3,
                                    None,
                                    line,
                                    Resolution::Edges(callees),
                                );
                                i += 4;
                                continue;
                            }
                        }
                    }
                }
                i += 1;
                continue;
            }
            // Free or path call: `name(…)` where `name` may end a `a::b::name`
            // path. Skip macro bangs and `fn name(` definitions.
            let open = skip_turbofish(toks, i + 1);
            if !is_punct(toks.get(open), '(')
                || is_punct(toks.get(i + 1), '!')
                || ident_text(toks.get(i.wrapping_sub(1))) == Some("fn")
            {
                i += 1;
                continue;
            }
            let mut segments = vec![name.to_string()];
            let mut j = i;
            while j >= 3
                && is_punct(toks.get(j - 1), ':')
                && is_punct(toks.get(j - 2), ':')
                && ident_text(toks.get(j - 3)).is_some()
            {
                segments.insert(0, toks[j - 3].text.clone());
                j -= 3;
            }
            let line = toks[i].line;
            let res = self.resolve_path(table, id, model, &segments);
            self.record(table, id, i, Some(open), line, res);
            i = open + 1;
        }
        // Deduplicate edges per callee, keeping the first witness line.
        let mut seen: BTreeMap<FnId, u32> = BTreeMap::new();
        for site in &self.sites[id] {
            for &callee in &site.callees {
                seen.entry(callee).or_insert(site.line);
            }
        }
        self.edges[id] = seen
            .into_iter()
            .map(|(to, line)| CallEdge { to, line })
            .collect();
    }

    fn record(
        &mut self,
        _table: &SymbolTable,
        id: FnId,
        token: usize,
        arg_open: Option<usize>,
        line: u32,
        res: Resolution,
    ) {
        match res {
            Resolution::Edges(callees) => self.sites[id].push(ResolvedSite {
                token,
                arg_open,
                line,
                callees,
            }),
            Resolution::External(name) => {
                let bare = !name.contains("::") && !name.starts_with('.');
                *self.externals.entry(name.clone()).or_insert(0) += 1;
                self.external_sites[id].push(ExternalSite {
                    token,
                    line,
                    name,
                    bare,
                });
            }
            Resolution::Ambiguous(name) => {
                *self.ambiguous.entry(name).or_insert(0) += 1;
            }
            Resolution::Ignore => {}
        }
    }

    fn resolve_method(
        &self,
        table: &SymbolTable,
        id: FnId,
        model: &FileModel,
        dot: usize,
        m: &str,
    ) -> Resolution {
        let sym = &table.fns[id];
        let recv = receiver_chain(&model.tokens, dot);
        if recv == "self" {
            if let Some(owner) = &sym.owner {
                let callees = filter_candidates(table, id, table.dispatch(owner, m, None));
                if !callees.is_empty() {
                    return Resolution::Edges(callees);
                }
            }
        } else if let Some(rest) = recv.strip_prefix("self.") {
            // First field segment, `[_]` index suffixes stripped.
            let field = rest
                .split(['.', '['])
                .next()
                .unwrap_or(rest)
                .trim_end_matches("[_]");
            if let Some(owner) = &sym.owner {
                if let Some(types) = table
                    .struct_fields
                    .get(owner)
                    .and_then(|fields| fields.get(field))
                {
                    let mut callees = Vec::new();
                    for k in types {
                        if table.type_names.contains(k) || table.trait_names.contains(k) {
                            let exclude = table.trait_names.contains(k).then_some(owner.as_str());
                            callees.extend(table.dispatch(k, m, exclude));
                        }
                    }
                    callees.sort_unstable();
                    callees.dedup();
                    let callees = filter_candidates(table, id, callees);
                    if !callees.is_empty() {
                        return Resolution::Edges(callees);
                    }
                }
            }
        }
        // Unknown receiver: unique-name fallback, std names excluded.
        let rendered = format!(".{m}()");
        if COMMON_STD_METHODS.contains(&m) {
            return Resolution::External(rendered);
        }
        let all = filter_candidates(table, id, table.by_name.get(m).cloned().unwrap_or_default());
        match all.len() {
            0 => Resolution::External(rendered),
            1 => Resolution::Edges(all),
            _ => Resolution::Ambiguous(rendered),
        }
    }

    fn resolve_path(
        &self,
        table: &SymbolTable,
        id: FnId,
        _model: &FileModel,
        segments: &[String],
    ) -> Resolution {
        let sym = &table.fns[id];
        let Some(name) = segments.last().map(String::as_str) else {
            return Resolution::Ignore;
        };
        if segments.len() == 1 {
            if name.chars().next().is_some_and(char::is_uppercase) {
                // Tuple-struct / enum-variant constructor, not a call.
                return Resolution::Ignore;
            }
            let frees: Vec<FnId> = filter_candidates(
                table,
                id,
                table.by_name.get(name).cloned().unwrap_or_default(),
            )
            .into_iter()
            .filter(|&c| table.fns[c].owner.is_none())
            .collect();
            let same_file: Vec<FnId> = frees
                .iter()
                .copied()
                .filter(|&c| table.fns[c].file == sym.file)
                .collect();
            if !same_file.is_empty() {
                return Resolution::Edges(same_file);
            }
            let same_crate: Vec<FnId> = frees
                .iter()
                .copied()
                .filter(|&c| table.fns[c].crate_name == sym.crate_name)
                .collect();
            return match (same_crate.len(), frees.len()) {
                (1, _) => Resolution::Edges(same_crate),
                (0, 0) => Resolution::External(name.to_string()),
                (0, 1) => Resolution::Edges(frees),
                _ => Resolution::Ambiguous(name.to_string()),
            };
        }
        if EXTERNAL_PATH_ROOTS.contains(&segments[0].as_str()) {
            return Resolution::External(segments.join("::"));
        }
        let head = segments[segments.len() - 2].as_str();
        let owner = if head == "Self" || head == "self" {
            sym.owner.clone()
        } else if table.type_names.contains(head) || table.trait_names.contains(head) {
            Some(head.to_string())
        } else {
            // `module::free_fn(…)` — a lowercase head that is no known type:
            // match free fns living in a file/dir named after the module,
            // same-crate first.
            let frees: Vec<FnId> = filter_candidates(
                table,
                id,
                table.by_name.get(name).cloned().unwrap_or_default(),
            )
            .into_iter()
            .filter(|&c| {
                let f = &table.fns[c];
                f.owner.is_none()
                    && (f.rel_path.ends_with(&format!("/{head}.rs"))
                        || f.rel_path.contains(&format!("/{head}/")))
            })
            .collect();
            let same_crate: Vec<FnId> = frees
                .iter()
                .copied()
                .filter(|&c| table.fns[c].crate_name == sym.crate_name)
                .collect();
            return if !same_crate.is_empty() {
                Resolution::Edges(same_crate)
            } else if frees.len() == 1 {
                Resolution::Edges(frees)
            } else {
                Resolution::External(segments.join("::"))
            };
        };
        match owner {
            Some(owner) => {
                let callees = filter_candidates(table, id, table.dispatch(&owner, name, None));
                if callees.is_empty() {
                    Resolution::External(format!("{owner}::{name}"))
                } else {
                    Resolution::Edges(callees)
                }
            }
            None => Resolution::External(segments.join("::")),
        }
    }
}

/// Drops bodyless decls, the caller itself (direct recursion is not an
/// edge worth propagating through), and test fns when the caller is not a
/// test.
fn filter_candidates(table: &SymbolTable, caller: FnId, mut ids: Vec<FnId>) -> Vec<FnId> {
    let caller_is_test = table.fns[caller].is_test;
    ids.retain(|&c| {
        c != caller && table.fns[c].has_body && (caller_is_test || !table.fns[c].is_test)
    });
    ids
}

/// The result of a hot-path reachability pass.
pub struct Propagation {
    /// Hot-path roots, in `FnId` order.
    pub roots: Vec<FnId>,
    /// BFS tree parent (caller) and the call-site line for every reached fn.
    pub parent: Vec<Option<(FnId, u32)>>,
    /// Reached set (roots included).
    pub reached: Vec<bool>,
}

/// BFS from every `hot_path` root. When `allow_key` is set, an
/// `// analysis: allow(<key>, …)` grant on a call-site line prunes
/// propagation through that edge — blessing a call blesses everything
/// behind it.
pub fn propagate(
    ws: &Workspace,
    table: &SymbolTable,
    graph: &CallGraph,
    allow_key: Option<&str>,
) -> Propagation {
    let mut prop = Propagation {
        roots: (0..table.fns.len())
            .filter(|&id| table.fns[id].hot && !table.fns[id].is_test)
            .collect(),
        parent: vec![None; table.fns.len()],
        reached: vec![false; table.fns.len()],
    };
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for &root in &prop.roots {
        prop.reached[root] = true;
        queue.push_back(root);
    }
    while let Some(f) = queue.pop_front() {
        let model = &ws.files[table.fns[f].file];
        for edge in &graph.edges[f] {
            if prop.reached[edge.to] || table.fns[edge.to].is_test {
                continue;
            }
            if let Some(key) = allow_key {
                if model.allow_for(edge.line, key).is_some() {
                    continue;
                }
            }
            prop.reached[edge.to] = true;
            prop.parent[edge.to] = Some((f, edge.line));
            queue.push_back(edge.to);
        }
    }
    prop
}

impl Propagation {
    /// The BFS witness chain ending at `f`: `root → g → f`.
    pub fn chain(&self, table: &SymbolTable, f: FnId) -> String {
        let mut names = vec![table.fns[f].display_name()];
        let mut cur = f;
        while let Some((parent, _)) = self.parent[cur] {
            names.push(table.fns[parent].display_name());
            cur = parent;
        }
        names.reverse();
        names.join(" → ")
    }
}

/// Evaluates the two interprocedural rules over the resolved graph.
pub fn interprocedural_findings(
    ws: &Workspace,
    table: &SymbolTable,
    graph: &CallGraph,
) -> Vec<Finding> {
    let alloc_reach = propagate(ws, table, graph, Some("alloc"));
    let blocking_reach = propagate(ws, table, graph, Some("blocking"));
    let mut findings = Vec::new();
    for (id, sym) in table.fns.iter().enumerate() {
        if sym.is_test || !sym.has_body {
            continue;
        }
        let model = &ws.files[sym.file];
        let span = &model.functions[sym.span];
        // Transitive allocation: reachable fns that are not themselves
        // hot-path roots (those are the intra rule's business).
        if alloc_reach.reached[id] && !sym.hot {
            let chain = alloc_reach.chain(table, id);
            for site in alloc_sites(model, span.body.clone()) {
                if model.allow_for(site.line, "alloc").is_some() {
                    continue;
                }
                let detail = &site.detail;
                findings.push(Finding {
                    rule: Rule::HotPathTransitiveAlloc,
                    file: model.rel_path.clone(),
                    line: site.line,
                    function: sym.display_name(),
                    detail: detail.clone(),
                    message: format!(
                        "allocating call `{detail}` reachable from a hot path via `{chain}` (allow(alloc) at the site, or at a call site along the chain to bless the whole subtree)"
                    ),
                });
            }
        }
        // Blocking: roots included — a hot path must not block, period.
        if blocking_reach.reached[id] {
            let chain = blocking_reach.chain(table, id);
            for site in blocking_sites(model, span.body.clone()) {
                if model.allow_for(site.line, "blocking").is_some() {
                    continue;
                }
                let detail = &site.detail;
                findings.push(Finding {
                    rule: Rule::BlockingInHotPath,
                    file: model.rel_path.clone(),
                    line: site.line,
                    function: sym.display_name(),
                    detail: detail.clone(),
                    message: format!(
                        "blocking operation `{detail}` reachable from a hot path via `{chain}` (allow(blocking) at the site, or at a call site along the chain to bless the whole subtree)"
                    ),
                });
            }
        }
    }
    findings
}

/// Renders the call graph as DOT: hot roots filled red, reachable fns
/// orange, everything else that participates in an edge grey.
pub fn to_dot(table: &SymbolTable, graph: &CallGraph, reach: &Propagation) -> String {
    let mut out =
        String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    let mut include = vec![false; table.fns.len()];
    for (id, edges) in graph.edges.iter().enumerate() {
        if !edges.is_empty() || table.fns[id].hot {
            include[id] = true;
        }
        for e in edges {
            include[e.to] = true;
        }
    }
    for (id, sym) in table.fns.iter().enumerate() {
        if !include[id] {
            continue;
        }
        let style = if sym.hot {
            ", style=filled, fillcolor=salmon"
        } else if reach.reached[id] {
            ", style=filled, fillcolor=orange"
        } else {
            ", color=grey"
        };
        out.push_str(&format!(
            "  f{id} [label=\"{}\\n{}\"{style}];\n",
            escape(&sym.display_name()),
            escape(&table.fns[id].crate_name),
        ));
    }
    for (id, edges) in graph.edges.iter().enumerate() {
        for e in edges {
            out.push_str(&format!("  f{id} -> f{};\n", e.to));
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::FileModel;

    fn build(files: &[(&str, &str)]) -> (Workspace, SymbolTable, CallGraph) {
        let ws = Workspace::from_models(
            files
                .iter()
                .map(|(rel, src)| FileModel::scan(rel, src))
                .collect(),
        );
        let table = SymbolTable::build(&ws);
        let graph = CallGraph::build(&ws, &table);
        (ws, table, graph)
    }

    fn id(table: &SymbolTable, display: &str) -> FnId {
        (0..table.fns.len())
            .find(|&i| table.fns[i].display_name() == display)
            .unwrap_or_else(|| panic!("no fn {display}"))
    }

    fn callees(table: &SymbolTable, graph: &CallGraph, from: &str) -> Vec<String> {
        let mut out: Vec<String> = graph.edges[id(table, from)]
            .iter()
            .map(|e| table.fns[e.to].display_name())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn self_and_type_qualified_calls_resolve_to_owners() {
        let (_ws, table, graph) = build(&[(
            "crates/a/src/lib.rs",
            "struct Codec;\n\
             impl Codec {\n\
                 fn encode(&self) { self.header(); Codec::checksum(); Self::checksum(); }\n\
                 fn header(&self) {}\n\
                 fn checksum() {}\n\
             }",
        )]);
        assert_eq!(
            callees(&table, &graph, "Codec::encode"),
            ["Codec::checksum", "Codec::header"]
        );
    }

    #[test]
    fn field_typed_receivers_and_dyn_trait_fields_fan_out() {
        let (_ws, table, graph) = build(&[(
            "crates/buf/src/lib.rs",
            "trait Policy { fn put(&self); }\n\
             struct Fifo;\n\
             impl Policy for Fifo { fn put(&self) {} }\n\
             struct Firo;\n\
             impl Policy for Firo { fn put(&self) {} }\n\
             struct Facade { shards: Vec<Box<dyn Policy>>, one: Fifo }\n\
             impl Policy for Facade { fn put(&self) { self.shards[0].put(); } }\n\
             impl Facade { fn direct(&self) { self.one.put(); } }",
        )]);
        // dyn-dispatch fans out to both impls; Facade itself is excluded
        // (a container does not contain itself).
        assert_eq!(
            callees(&table, &graph, "Facade::put"),
            ["Fifo::put", "Firo::put"]
        );
        assert_eq!(callees(&table, &graph, "Facade::direct"), ["Fifo::put"]);
    }

    #[test]
    fn unknown_receivers_are_ambiguous_not_edges() {
        let (_ws, table, graph) = build(&[(
            "crates/a/src/lib.rs",
            "struct A; struct B;\n\
             impl A { fn serve(&self) {} }\n\
             impl B { fn serve(&self) {} }\n\
             fn caller(x: &A) { x.serve(); }",
        )]);
        assert!(callees(&table, &graph, "caller").is_empty());
        assert_eq!(graph.ambiguous.get(".serve()"), Some(&1));
    }

    #[test]
    fn externals_are_recorded_with_counts() {
        let (_ws, table, graph) = build(&[(
            "crates/a/src/lib.rs",
            "fn caller(emit: impl Fn(u32)) { emit(1); emit(2); std::fs::read_to_string(\"x\"); v.collect::<Vec<_>>(); }",
        )]);
        assert_eq!(graph.externals.get("emit"), Some(&2));
        assert_eq!(graph.externals.get("std::fs::read_to_string"), Some(&1));
        // `.collect()` is a common std method: external, never an edge.
        assert_eq!(graph.externals.get(".collect()"), Some(&1));
        let caller = id(&table, "caller");
        assert!(graph.external_sites[caller]
            .iter()
            .any(|e| e.bare && e.name == "emit"));
    }

    #[test]
    fn free_calls_prefer_same_file_then_crate() {
        let (_ws, table, graph) = build(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {}\nfn caller() { helper(); }",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        let caller = id(&table, "caller");
        assert_eq!(graph.edges[caller].len(), 1);
        let to = graph.edges[caller][0].to;
        assert_eq!(table.fns[to].crate_name, "a");
    }

    #[test]
    fn method_references_without_parens_still_edge() {
        let (_ws, table, graph) = build(&[(
            "crates/a/src/lib.rs",
            "struct Msg;\n\
             impl Msg { fn wire_bytes(&self) -> usize { 0 } }\n\
             fn total(msgs: &[Msg]) -> usize { msgs.iter().map(Msg::wire_bytes).sum::<usize>() }",
        )]);
        assert_eq!(callees(&table, &graph, "total"), ["Msg::wire_bytes"]);
    }

    #[test]
    fn propagation_carries_chain_witnesses_and_allow_prunes() {
        let src = "\
// analysis: hot_path
fn root() { middle(); }
fn middle() { leaf(); blessed(); }
fn leaf() { let v = Vec::new(); v.len(); }
// analysis: allow(alloc, reason = \"one-time setup behind a flag\")
fn unreached() {}
fn blessed() { let v = Vec::new(); v.len(); }
";
        // `blessed()` is called on a line covered by an allow in `middle`:
        let src = src.replace(
            "fn middle() { leaf(); blessed(); }",
            "fn middle() {\n    leaf();\n    // analysis: allow(alloc, reason = \"cold slow-path refill\")\n    blessed();\n}",
        );
        let (ws, table, graph) = build(&[("crates/a/src/lib.rs", &src)]);
        let findings = interprocedural_findings(&ws, &table, &graph);
        let transitive: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == Rule::HotPathTransitiveAlloc)
            .collect();
        assert_eq!(transitive.len(), 1, "{transitive:?}");
        assert_eq!(transitive[0].function, "leaf");
        assert!(
            transitive[0].message.contains("root → middle → leaf"),
            "chain witness missing: {}",
            transitive[0].message
        );
        // The blessed subtree contributed nothing.
        assert!(!findings.iter().any(|f| f.function == "blessed"));
    }

    #[test]
    fn blocking_rule_covers_roots_and_reached_fns() {
        let (ws, table, graph) = build(&[(
            "crates/a/src/lib.rs",
            "// analysis: hot_path\n\
             fn root(&self) { self.inner.lock(); helper(); }\n\
             fn helper() { std::thread::sleep(d); }\n\
             fn cold() { other.lock(); }",
        )]);
        let findings = interprocedural_findings(&ws, &table, &graph);
        let blocking: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == Rule::BlockingInHotPath)
            .collect();
        let details: Vec<&str> = blocking.iter().map(|f| f.detail.as_str()).collect();
        assert_eq!(details, [".lock()", "sleep()"], "{blocking:?}");
        assert!(blocking[1].message.contains("root → helper"));
    }
}
