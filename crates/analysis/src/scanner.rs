//! The brace-scoped scanner: turns a lexed file into the model the rules
//! consume — function spans, `#[cfg(test)]` regions, and the parsed
//! `// analysis:` / `// ordering:` directive comments.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};
use std::collections::BTreeMap;
use std::ops::Range;
use std::path::Path;

/// Which kind of compilation context a file belongs to; decides which rules
/// apply (e.g. the panic-surface rule covers only [`FileContext::Library`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileContext {
    /// Regular library code under some crate's `src/`.
    Library,
    /// Integration tests (`tests/`), unit-test files, fixtures.
    Test,
    /// Benchmarks (`benches/`, and everything in the bench-harness crate).
    Bench,
    /// Example binaries under `examples/`.
    Example,
}

impl FileContext {
    /// Classifies a workspace-relative path.
    pub fn classify(rel_path: &str) -> FileContext {
        let p = rel_path.replace('\\', "/");
        if p.starts_with("tests/") || p.contains("/tests/") {
            FileContext::Test
        } else if p.starts_with("examples/") || p.contains("/examples/") {
            FileContext::Example
        } else if p.contains("/benches/") || p.starts_with("crates/bench/") {
            FileContext::Bench
        } else {
            FileContext::Library
        }
    }
}

/// An inline `// analysis: allow(<rule>, reason = "…")` grant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule key being allowed (`alloc`, `blocking`, `lock`, `ordering`,
    /// `panic`, `seed`, `unsafe`).
    pub rule: String,
    /// The mandatory human justification.
    pub reason: String,
    /// Line of the directive comment.
    pub line: u32,
}

/// All directives mined from one file's comments.
#[derive(Debug, Default)]
pub struct Directives {
    /// Lines holding a `// analysis: hot_path` marker.
    pub hot_path_lines: Vec<u32>,
    /// Allow grants, keyed by the line of code they cover (the directive's
    /// own line for trailing comments, the next code line otherwise).
    pub allows: BTreeMap<u32, Vec<Allow>>,
    /// Lines carrying a non-empty `// ordering:` justification.
    pub ordering_lines: Vec<u32>,
    /// Malformed directives: `(line, problem)`. Reported as hard errors so a
    /// typo can never silently disable a lint.
    pub malformed: Vec<(u32, String)>,
}

/// One `fn` item found by the scanner.
#[derive(Debug)]
pub struct FnSpan {
    /// The function's (raw-normalised) name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, **excluding** the outer braces; empty
    /// for bodyless trait-method declarations.
    pub body: Range<usize>,
    /// True when the `fn` has a braced body at all — distinguishes an empty
    /// `fn f() {}` (has one) from a bodyless trait declaration `fn f();`.
    pub has_body: bool,
    /// True when the function carries a `// analysis: hot_path` marker.
    pub hot_path: bool,
    /// True inside `#[cfg(test)]` regions or for `#[test]`/`#[bench]` fns.
    pub is_test: bool,
    /// The type this function is a method of (`impl Type` / `impl Tr for
    /// Type` → `Type`), or the trait name for default methods declared in a
    /// `trait` block; `None` for free functions.
    pub owner: Option<String>,
    /// True when [`FnSpan::owner`] names a `trait` block (a provided default
    /// method) rather than an `impl` block.
    pub owner_is_trait: bool,
}

impl FnSpan {
    /// `Owner::name` for methods, plain `name` for free functions — the form
    /// interprocedural findings and chain witnesses use.
    pub fn display_name(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The scanned model of one source file.
pub struct FileModel {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Compilation context, decided from the path.
    pub context: FileContext,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// The comment side-channel.
    pub comments: Vec<Comment>,
    /// Parsed directives.
    pub directives: Directives,
    /// Every function item, in source order (outer functions only; nested
    /// `fn` items inside bodies are attributed to their enclosing span).
    pub functions: Vec<FnSpan>,
    /// Token-index ranges that are test-only (`#[cfg(test)]` mod bodies and
    /// `#[test]` function bodies).
    pub test_ranges: Vec<Range<usize>>,
    /// `(trait, type)` pairs from `impl Trait for Type` blocks, in source
    /// order — the raw material for trait-dispatch call resolution.
    pub trait_impls: Vec<(String, String)>,
}

impl FileModel {
    /// Lexes and scans `source` as `rel_path`.
    pub fn scan(rel_path: &str, source: &str) -> FileModel {
        let Lexed { tokens, comments } = lex(source);
        let directives = parse_directives(&comments, &tokens);
        let mut model = FileModel {
            rel_path: rel_path.to_string(),
            context: FileContext::classify(rel_path),
            tokens,
            comments,
            directives,
            functions: Vec::new(),
            test_ranges: Vec::new(),
            trait_impls: Vec::new(),
        };
        let mut hot_lines: Vec<u32> = model.directives.hot_path_lines.clone();
        scan_items(&mut model, &mut hot_lines, 0, usize::MAX, false, None);
        model
    }

    /// Reads and scans a file on disk (`rel_path` is what findings report).
    pub fn scan_path(root: &Path, rel_path: &str) -> std::io::Result<FileModel> {
        let source = std::fs::read_to_string(root.join(rel_path))?;
        Ok(FileModel::scan(rel_path, &source))
    }

    /// True when token index `i` lies in a test-only range.
    pub fn in_test_range(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|r| r.contains(&i))
    }

    /// The innermost function span containing token index `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.functions
            .iter()
            .filter(|f| f.body.contains(&i))
            .min_by_key(|f| f.body.len())
    }

    /// The allow grants covering source line `line` for `rule`.
    pub fn allow_for(&self, line: u32, rule: &str) -> Option<&Allow> {
        self.directives
            .allows
            .get(&line)
            .and_then(|grants| grants.iter().find(|a| a.rule == rule))
    }
}

/// Parses the directive comments. Lines are mapped to the code they cover:
/// a trailing directive (code precedes it on the same line) covers its own
/// line; a directive on its own line covers the **next** line that holds a
/// code token.
fn parse_directives(comments: &[Comment], tokens: &[Token]) -> Directives {
    let mut directives = Directives::default();
    // Lines that contain at least one code token, for trailing detection and
    // next-code-line resolution.
    let code_lines: Vec<u32> = tokens.iter().map(|t| t.line).collect();
    let has_code_on = |line: u32| code_lines.binary_search(&line).is_ok();
    let next_code_line = |line: u32| -> u32 {
        match code_lines.binary_search(&(line + 1)) {
            Ok(_) => line + 1,
            Err(i) => code_lines.get(i).copied().unwrap_or(line + 1),
        }
    };

    for comment in comments.iter().filter(|c| !c.block) {
        let text = comment.text.trim();
        if let Some(rest) = text.strip_prefix("analysis:") {
            let rest = rest.trim();
            if rest == "hot_path" {
                directives.hot_path_lines.push(comment.line);
            } else if let Some(body) = rest
                .strip_prefix("allow(")
                .and_then(|r| r.strip_suffix(')'))
            {
                match parse_allow(body, comment.line) {
                    Ok(allow) => {
                        let covered = if has_code_on(comment.line) {
                            comment.line
                        } else {
                            next_code_line(comment.line)
                        };
                        directives.allows.entry(covered).or_default().push(allow);
                    }
                    Err(problem) => directives.malformed.push((comment.line, problem)),
                }
            } else {
                directives.malformed.push((
                    comment.line,
                    format!("unknown `analysis:` directive `{rest}`"),
                ));
            }
        } else if let Some(rest) = text.strip_prefix("ordering:") {
            if rest.trim().is_empty() {
                directives
                    .malformed
                    .push((comment.line, "empty `ordering:` justification".into()));
            } else {
                directives.ordering_lines.push(comment.line);
            }
        }
    }
    directives
}

/// Parses `alloc, reason = "why"` (the inside of an `allow(…)`).
fn parse_allow(body: &str, line: u32) -> Result<Allow, String> {
    let (rule, rest) = body
        .split_once(',')
        .ok_or_else(|| "allow() needs `allow(<rule>, reason = \"…\")`".to_string())?;
    let rule = rule.trim().to_string();
    const RULES: [&str; 7] = [
        "alloc", "blocking", "lock", "ordering", "panic", "seed", "unsafe",
    ];
    if !RULES.contains(&rule.as_str()) {
        return Err(format!(
            "unknown allow rule `{rule}` (expected one of {RULES:?})"
        ));
    }
    let rest = rest.trim();
    let reason = rest
        .strip_prefix("reason")
        .map(|r| r.trim_start())
        .and_then(|r| r.strip_prefix('='))
        .map(|r| r.trim().trim_matches('"').trim())
        .unwrap_or("");
    if reason.is_empty() {
        return Err("allow() requires a non-empty reason".to_string());
    }
    Ok(Allow {
        rule,
        reason: reason.to_string(),
        line,
    })
}

/// The owner context `scan_items` threads through `impl`/`trait` blocks.
#[derive(Clone, Copy)]
struct Owner<'a> {
    name: &'a str,
    is_trait: bool,
}

/// Recursive item walk from token index `from` up to `until` (exclusive).
/// Collects `fn` spans and test ranges; `in_test` propagates through
/// `#[cfg(test)]` modules, `owner` through `impl`/`trait` block bodies.
fn scan_items(
    model: &mut FileModel,
    hot_lines: &mut Vec<u32>,
    from: usize,
    until: usize,
    in_test: bool,
    owner: Option<Owner<'_>>,
) {
    let mut i = from;
    let mut pending_test = false;
    while i < model.tokens.len() && i < until {
        let tok = &model.tokens[i];
        match &tok.kind {
            TokenKind::Punct('#') if matches_attr_open(model, i) => {
                let (end, is_test_attr) = consume_attr(model, i);
                pending_test |= is_test_attr;
                i = end;
            }
            TokenKind::Ident if tok.text == "fn" && !tok.raw => {
                let line = tok.line;
                let name = model
                    .tokens
                    .get(i + 1)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                let (body, has_body) = fn_body_range(model, i + 1);
                let hot_path = take_hot_marker(hot_lines, line);
                let is_test = in_test || pending_test;
                if is_test && !body.is_empty() && !in_test {
                    model.test_ranges.push(body.clone());
                }
                let next = body.end.max(i + 1);
                model.functions.push(FnSpan {
                    name,
                    line,
                    body: body.clone(),
                    has_body,
                    hot_path,
                    is_test,
                    owner: owner.map(|o| o.name.to_string()),
                    owner_is_trait: owner.map(|o| o.is_trait).unwrap_or(false),
                });
                if !body.is_empty() {
                    // Recurse so nested items (e.g. local fns) are seen, but
                    // nested spans are only *added*, not replacing this one.
                    // Items nested in a body are free-standing again.
                    scan_items(model, hot_lines, body.start, body.end, is_test, None);
                }
                pending_test = false;
                i = next;
            }
            TokenKind::Ident if tok.text == "mod" && !tok.raw => {
                // `mod name { … }` or `mod name;`
                let body = brace_body_after(model, i + 1);
                let is_test = in_test || pending_test;
                if let Some(body) = body {
                    if is_test && !in_test {
                        model.test_ranges.push(body.clone());
                    }
                    scan_items(model, hot_lines, body.start, body.end, is_test, None);
                    i = body.end + 1;
                } else {
                    i += 1;
                }
                pending_test = false;
            }
            TokenKind::Ident if (tok.text == "impl" || tok.text == "trait") && !tok.raw => {
                let is_trait_block = tok.text == "trait";
                let header = parse_owner_header(model, i + 1, is_trait_block);
                let is_test = in_test || pending_test;
                match header {
                    Some(header) => {
                        if is_test && !in_test {
                            model.test_ranges.push(header.body.clone());
                        }
                        if let (Some(tr), Some(ty)) = (&header.trait_name, &header.type_name) {
                            model.trait_impls.push((tr.clone(), ty.clone()));
                        }
                        let next = header.body.end + 1;
                        let owner_name = header.type_name;
                        scan_items(
                            model,
                            hot_lines,
                            header.body.start,
                            header.body.end,
                            is_test,
                            owner_name.as_deref().map(|name| Owner {
                                name,
                                is_trait: is_trait_block,
                            }),
                        );
                        i = next;
                    }
                    None => i += 1,
                }
                pending_test = false;
            }
            TokenKind::Punct('{') => {
                // An extern block or similar: recurse transparently.
                i += 1;
                pending_test = false;
            }
            TokenKind::Punct(';') | TokenKind::Punct('}') => {
                pending_test = false;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
}

/// The parsed header of an `impl`/`trait` block.
struct OwnerHeader {
    /// `impl Type` / `impl Tr for Type` → `Type`; `trait Tr` → `Tr`.
    type_name: Option<String>,
    /// The trait in `impl Tr for Type` headers.
    trait_name: Option<String>,
    /// Inner token range of the block body.
    body: Range<usize>,
}

/// Parses an `impl [<…>] [Trait for] Type [where …] { … }` or
/// `trait Name[<…>][: Bounds] { … }` header starting just past the keyword.
/// A path's last segment at angle-depth 0 is taken as the name, so
/// `impl<T: Send> fmt::Display for Shard<T>` yields trait `Display`, type
/// `Shard`. Returns `None` when no body brace is found (e.g. `impl Trait` in
/// return position won't reach here, but stay defensive).
fn parse_owner_header(model: &FileModel, from: usize, is_trait_block: bool) -> Option<OwnerHeader> {
    let mut angle = 0isize;
    let mut candidate: Option<String> = None;
    let mut trait_name: Option<String> = None;
    let mut frozen = false; // set at `where`: the name is decided
    let mut j = from;
    const SKIP: [&str; 8] = [
        "dyn", "mut", "unsafe", "const", "pub", "crate", "async", "ref",
    ];
    while let Some(tok) = model.tokens.get(j) {
        match &tok.kind {
            TokenKind::Punct('{') => {
                let close = matching_brace(model, j);
                return Some(OwnerHeader {
                    type_name: candidate,
                    trait_name,
                    body: j + 1..close,
                });
            }
            TokenKind::Punct(';') if angle == 0 => return None,
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => {
                // `->` in e.g. `impl<F: Fn() -> usize>` is not a closer.
                let arrow = j > 0 && model.tokens[j - 1].kind == TokenKind::Punct('-');
                if !arrow {
                    angle -= 1;
                }
            }
            TokenKind::Ident if angle == 0 && !frozen => {
                match tok.text.as_str() {
                    "where" => frozen = true,
                    "for" => {
                        // What we read so far was the trait; the type follows.
                        trait_name = candidate.take();
                    }
                    t if SKIP.contains(&t) => {}
                    _ => candidate = Some(tok.text.clone()),
                }
                // A trait's name is the first ident after the keyword; bounds
                // after `:` must not overwrite it.
                if is_trait_block && candidate.is_some() {
                    frozen = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Claims a `// analysis: hot_path` marker for a `fn` at `fn_line`: the
/// nearest unconsumed marker within the 8 lines above (room for attributes
/// and doc comments between marker and item).
fn take_hot_marker(hot_lines: &mut Vec<u32>, fn_line: u32) -> bool {
    let found = hot_lines
        .iter()
        .position(|&l| l < fn_line && fn_line - l <= 8);
    if let Some(pos) = found {
        hot_lines.remove(pos);
        true
    } else {
        false
    }
}

fn matches_attr_open(model: &FileModel, i: usize) -> bool {
    matches!(
        model.tokens.get(i + 1).map(|t| &t.kind),
        Some(TokenKind::Punct('[')) | Some(TokenKind::Punct('!'))
    )
}

/// Consumes an attribute starting at `#`; returns the index past it and
/// whether it marks test-only code (`#[test]`, `#[bench]`, `#[cfg(test)]`).
fn consume_attr(model: &FileModel, i: usize) -> (usize, bool) {
    let mut j = i + 1;
    if matches!(
        model.tokens.get(j).map(|t| &t.kind),
        Some(TokenKind::Punct('!'))
    ) {
        j += 1; // inner attribute `#![…]`
    }
    if !matches!(
        model.tokens.get(j).map(|t| &t.kind),
        Some(TokenKind::Punct('['))
    ) {
        return (i + 1, false);
    }
    let mut depth = 0usize;
    let mut is_test = false;
    let mut saw_cfg = false;
    while let Some(tok) = model.tokens.get(j) {
        match &tok.kind {
            TokenKind::Punct('[') | TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(']') | TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, is_test);
                }
            }
            TokenKind::Ident if tok.text == "cfg" => saw_cfg = true,
            TokenKind::Ident if tok.text == "test" => {
                // `#[test]` directly, or `test` appearing inside `#[cfg(…)]`.
                is_test |= depth == 1 || saw_cfg;
            }
            TokenKind::Ident if tok.text == "bench" && depth == 1 => is_test = true,
            _ => {}
        }
        j += 1;
    }
    (j, is_test)
}

/// From just past the `fn` keyword, finds the body braces: scans to the first
/// `{` at balanced delimiter depth, or a `;` (bodyless declaration). Returns
/// the token range strictly inside the braces (empty range at the `;` for
/// bodyless forms).
fn fn_body_range(model: &FileModel, from: usize) -> (Range<usize>, bool) {
    let mut depth = 0isize;
    let mut j = from;
    while let Some(tok) = model.tokens.get(j) {
        match &tok.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Punct(';') if depth == 0 => return (j..j, false),
            TokenKind::Punct('{') if depth == 0 => {
                let close = matching_brace(model, j);
                return (j + 1..close, true);
            }
            _ => {}
        }
        j += 1;
    }
    (model.tokens.len()..model.tokens.len(), false)
}

/// Finds `{ … }` directly after an item keyword (for `mod`): returns the
/// inner range, or `None` for the `;` form.
fn brace_body_after(model: &FileModel, from: usize) -> Option<Range<usize>> {
    let mut j = from;
    while let Some(tok) = model.tokens.get(j) {
        match &tok.kind {
            TokenKind::Punct(';') => return None,
            TokenKind::Punct('{') => {
                let close = matching_brace(model, j);
                return Some(j + 1..close);
            }
            _ => j += 1,
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open` (or end of stream when
/// unbalanced).
fn matching_brace(model: &FileModel, open: usize) -> usize {
    let mut depth = 0isize;
    let mut j = open;
    while let Some(tok) = model.tokens.get(j) {
        match &tok.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    model.tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_functions_and_bodies() {
        let model = FileModel::scan(
            "crates/x/src/lib.rs",
            "pub fn alpha(a: usize) -> usize { a + 1 }\nfn beta();\nfn gamma() { if true { () } }",
        );
        let names: Vec<&str> = model.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "gamma"]);
        assert!(model.functions[1].body.is_empty());
        assert!(!model.functions[2].body.is_empty());
    }

    #[test]
    fn hot_path_marker_attaches_to_the_next_fn() {
        let model = FileModel::scan(
            "crates/x/src/lib.rs",
            "// analysis: hot_path\n#[inline]\npub fn hot() {}\n\npub fn cold() {}",
        );
        assert!(model.functions[0].hot_path, "marker skips attributes");
        assert!(!model.functions[1].hot_path);
    }

    #[test]
    fn cfg_test_modules_and_test_fns_become_test_ranges() {
        let src = "pub fn lib_code() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { y.unwrap(); }\n}\n\
                   #[test]\nfn stray() { z.unwrap(); }";
        let model = FileModel::scan("crates/x/src/lib.rs", src);
        assert_eq!(model.test_ranges.len(), 2, "the mod body and the stray fn");
        let lib_fn = &model.functions[0];
        assert!(!lib_fn.is_test);
        assert!(model.functions.iter().any(|f| f.name == "t" && f.is_test));
        assert!(model
            .functions
            .iter()
            .any(|f| f.name == "stray" && f.is_test));
    }

    #[test]
    fn allow_directives_map_to_covered_lines() {
        let src = "fn f() {\n    x.clone(); // analysis: allow(alloc, reason = \"trailing\")\n    // analysis: allow(panic, reason = \"next line\")\n    y.unwrap();\n}";
        let model = FileModel::scan("crates/x/src/lib.rs", src);
        assert_eq!(model.allow_for(2, "alloc").unwrap().reason, "trailing");
        assert_eq!(model.allow_for(4, "panic").unwrap().reason, "next line");
        assert!(model.allow_for(4, "alloc").is_none());
    }

    #[test]
    fn malformed_directives_are_reported() {
        let src = "// analysis: allow(alloc)\n// analysis: allow(bogus, reason = \"x\")\n// ordering:\n// analysis: hot_pth\nfn f() {}";
        let model = FileModel::scan("crates/x/src/lib.rs", src);
        assert_eq!(model.directives.malformed.len(), 4);
    }

    #[test]
    fn ordering_lines_are_collected() {
        let src =
            "// ordering: Relaxed is enough, counter only\nlet x = a.load(Ordering::Relaxed);";
        let model = FileModel::scan("crates/x/src/lib.rs", src);
        assert_eq!(model.directives.ordering_lines, [1]);
    }

    #[test]
    fn context_classification() {
        assert_eq!(
            FileContext::classify("crates/nn/src/mlp.rs"),
            FileContext::Library
        );
        assert_eq!(
            FileContext::classify("crates/nn/tests/props.rs"),
            FileContext::Test
        );
        assert_eq!(
            FileContext::classify("crates/bench/src/lib.rs"),
            FileContext::Bench
        );
        assert_eq!(
            FileContext::classify("crates/nn/benches/gemm.rs"),
            FileContext::Bench
        );
        assert_eq!(
            FileContext::classify("examples/quickstart.rs"),
            FileContext::Example
        );
        assert_eq!(FileContext::classify("tests/smoke.rs"), FileContext::Test);
    }

    #[test]
    fn impl_blocks_attach_owners() {
        let src = "struct Buf;\n\
                   impl Buf {\n    fn put(&self) {}\n}\n\
                   impl<T: Send> std::fmt::Display for Buf {\n    fn fmt(&self) {}\n}\n\
                   fn free() {}";
        let model = FileModel::scan("crates/x/src/lib.rs", src);
        let owner_of = |name: &str| {
            model
                .functions
                .iter()
                .find(|f| f.name == name)
                .unwrap()
                .owner
                .clone()
        };
        assert_eq!(owner_of("put").as_deref(), Some("Buf"));
        assert_eq!(owner_of("fmt").as_deref(), Some("Buf"));
        assert_eq!(owner_of("free"), None);
        assert_eq!(
            model.trait_impls,
            vec![("Display".to_string(), "Buf".to_string())]
        );
    }

    #[test]
    fn trait_blocks_own_default_methods() {
        let src = "trait Policy: Send {\n    fn len(&self) -> usize;\n    fn is_empty(&self) -> bool { self.len() == 0 }\n}\n\
                   impl<F: Fn(usize) -> usize> Policy for Wrapper<F> {\n    fn len(&self) -> usize { 0 }\n}";
        let model = FileModel::scan("crates/x/src/lib.rs", src);
        let is_empty = model
            .functions
            .iter()
            .find(|f| f.name == "is_empty")
            .unwrap();
        assert_eq!(is_empty.owner.as_deref(), Some("Policy"));
        assert!(is_empty.owner_is_trait);
        assert_eq!(is_empty.display_name(), "Policy::is_empty");
        // The `->` inside the impl generics must not unbalance the header.
        let len_impl = model
            .functions
            .iter()
            .find(|f| f.name == "len" && !f.body.is_empty())
            .unwrap();
        assert_eq!(len_impl.owner.as_deref(), Some("Wrapper"));
        assert!(!len_impl.owner_is_trait);
        assert_eq!(
            model.trait_impls,
            vec![("Policy".to_string(), "Wrapper".to_string())]
        );
    }

    #[test]
    fn enclosing_fn_prefers_the_innermost_span() {
        let src = "fn outer() {\n    fn inner() { body(); }\n    tail();\n}";
        let model = FileModel::scan("crates/x/src/lib.rs", src);
        let body_idx = model.tokens.iter().position(|t| t.text == "body").unwrap();
        assert_eq!(model.enclosing_fn(body_idx).unwrap().name, "inner");
        let tail_idx = model.tokens.iter().position(|t| t.text == "tail").unwrap();
        assert_eq!(model.enclosing_fn(tail_idx).unwrap().name, "outer");
    }
}
