//! The checked manifests: the declared lock order (`analysis/locks.toml`),
//! the versioned RNG seed policy (`analysis/seed_policy.toml`), and the
//! audited unsafe scopes (`analysis/unsafe.toml`).
//!
//! All three files are part of the reviewed source tree: changing a lock
//! order, blessing a new seed-derivation site, or widening the unsafe
//! surface is a diff a reviewer sees, not a convention a refactor silently
//! breaks.

use crate::toml_lite::{parse, Doc};
use std::path::Path;

/// One declared lock class: a receiver pattern within one file, with its
/// acquisition rank. A lock may only be acquired while every held lock has a
/// **strictly lower** rank.
#[derive(Debug, Clone)]
pub struct LockClass {
    /// Human name of the class (reporting only).
    pub name: String,
    /// Workspace-relative file the class applies to.
    pub file: String,
    /// Receiver-chain prefix, as rendered by the scanner (`self.draw`,
    /// `self.shards`); indexing renders as `[_]` and prefix-matches.
    pub receiver: String,
    /// Acquisition rank: lower ranks are acquired first (outermost).
    pub rank: i64,
}

/// The declared lock order.
#[derive(Debug, Clone, Default)]
pub struct LockManifest {
    classes: Vec<LockClass>,
}

impl LockManifest {
    /// Loads `analysis/locks.toml` under `root`; a missing file is an empty
    /// manifest (every nested acquisition is then a heuristic finding).
    pub fn load(root: &Path) -> Result<LockManifest, String> {
        let path = root.join("analysis/locks.toml");
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Ok(LockManifest::default());
        };
        let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut classes = Vec::new();
        for entry in doc.arrays.get("class").map(|v| v.as_slice()).unwrap_or(&[]) {
            classes.push(LockClass {
                name: entry
                    .get("name")
                    .and_then(|v| v.as_str())
                    .ok_or("lock class missing `name`")?
                    .to_string(),
                file: entry
                    .get("file")
                    .and_then(|v| v.as_str())
                    .ok_or("lock class missing `file`")?
                    .to_string(),
                receiver: entry
                    .get("receiver")
                    .and_then(|v| v.as_str())
                    .ok_or("lock class missing `receiver`")?
                    .to_string(),
                rank: entry
                    .get("rank")
                    .and_then(|v| v.as_int())
                    .ok_or("lock class missing integer `rank`")?,
            });
        }
        Ok(LockManifest { classes })
    }

    /// Builds a manifest from `(file, receiver, rank)` triples (tests).
    pub fn from_entries(entries: Vec<(String, String, i64)>) -> LockManifest {
        LockManifest {
            classes: entries
                .into_iter()
                .map(|(file, receiver, rank)| LockClass {
                    name: receiver.clone(),
                    file,
                    receiver,
                    rank,
                })
                .collect(),
        }
    }

    /// The rank of `receiver` in `file`, when a class matches. Receivers
    /// match by prefix so `self.shards[_]` matches a `self.shards` class.
    pub fn rank_of(&self, file: &str, receiver: &str) -> Option<i64> {
        self.class_of(file, receiver).map(|c| c.rank)
    }

    /// The declared class for `receiver` in `file`, if any (prefix match,
    /// like [`LockManifest::rank_of`]).
    pub fn class_of(&self, file: &str, receiver: &str) -> Option<&LockClass> {
        self.classes
            .iter()
            .find(|c| c.file == file && receiver.starts_with(c.receiver.as_str()))
    }

    /// All declared classes (reporting).
    pub fn classes(&self) -> &[LockClass] {
        &self.classes
    }
}

/// One blessed seed-policy location: RNG construction/drawing inside the
/// listed functions of one file is within policy.
#[derive(Debug, Clone)]
pub struct SeedHelper {
    /// Workspace-relative file.
    pub file: String,
    /// Function names blessed within that file.
    pub functions: Vec<String>,
}

/// The versioned seed-policy manifest.
#[derive(Debug, Clone, Default)]
pub struct SeedManifest {
    helpers: Vec<SeedHelper>,
}

impl SeedManifest {
    /// Loads `analysis/seed_policy.toml` under `root`; a missing file means
    /// *no* site is blessed.
    pub fn load(root: &Path) -> Result<SeedManifest, String> {
        let path = root.join("analysis/seed_policy.toml");
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Ok(SeedManifest::default());
        };
        let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(SeedManifest {
            helpers: helpers_from(&doc)?,
        })
    }

    /// Builds a manifest from `(file, functions)` pairs (tests).
    pub fn from_entries(entries: Vec<(String, Vec<String>)>) -> SeedManifest {
        SeedManifest {
            helpers: entries
                .into_iter()
                .map(|(file, functions)| SeedHelper { file, functions })
                .collect(),
        }
    }

    /// True when `function` in `file` is a blessed seed-policy helper.
    pub fn allows(&self, file: &str, function: &str) -> bool {
        self.helpers
            .iter()
            .any(|h| h.file == file && h.functions.iter().any(|f| f == function))
    }

    /// All blessed helpers (reporting).
    pub fn helpers(&self) -> &[SeedHelper] {
        &self.helpers
    }
}

/// One audited unsafe scope: a workspace-relative path prefix whose files
/// are allowed to contain `unsafe` code, with the justification on record.
#[derive(Debug, Clone)]
pub struct UnsafeScope {
    /// Human name of the scope (reporting only).
    pub name: String,
    /// Workspace-relative path prefix (`crates/nn/src/simd/`); a file is in
    /// scope when its rel-path starts with the prefix.
    pub prefix: String,
}

/// The audited-unsafe manifest.
#[derive(Debug, Clone, Default)]
pub struct UnsafeManifest {
    scopes: Vec<UnsafeScope>,
}

impl UnsafeManifest {
    /// Loads `analysis/unsafe.toml` under `root`; a missing file means *no*
    /// library file may contain `unsafe`.
    pub fn load(root: &Path) -> Result<UnsafeManifest, String> {
        let path = root.join("analysis/unsafe.toml");
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Ok(UnsafeManifest::default());
        };
        let doc = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut scopes = Vec::new();
        for entry in doc.arrays.get("scope").map(|v| v.as_slice()).unwrap_or(&[]) {
            scopes.push(UnsafeScope {
                name: entry
                    .get("name")
                    .and_then(|v| v.as_str())
                    .ok_or("unsafe scope missing `name`")?
                    .to_string(),
                prefix: entry
                    .get("prefix")
                    .and_then(|v| v.as_str())
                    .ok_or("unsafe scope missing `prefix`")?
                    .to_string(),
            });
        }
        Ok(UnsafeManifest { scopes })
    }

    /// Builds a manifest from path prefixes (tests).
    pub fn from_prefixes(prefixes: Vec<String>) -> UnsafeManifest {
        UnsafeManifest {
            scopes: prefixes
                .into_iter()
                .map(|prefix| UnsafeScope {
                    name: prefix.clone(),
                    prefix,
                })
                .collect(),
        }
    }

    /// True when `file` lies inside an audited unsafe scope.
    pub fn allows(&self, file: &str) -> bool {
        self.scopes
            .iter()
            .any(|s| file.starts_with(s.prefix.as_str()))
    }

    /// All audited scopes (reporting).
    pub fn scopes(&self) -> &[UnsafeScope] {
        &self.scopes
    }
}

fn helpers_from(doc: &Doc) -> Result<Vec<SeedHelper>, String> {
    let mut helpers = Vec::new();
    for entry in doc
        .arrays
        .get("helper")
        .map(|v| v.as_slice())
        .unwrap_or(&[])
    {
        helpers.push(SeedHelper {
            file: entry
                .get("file")
                .and_then(|v| v.as_str())
                .ok_or("seed helper missing `file`")?
                .to_string(),
            functions: entry
                .get("functions")
                .and_then(|v| v.as_str_array())
                .ok_or("seed helper missing `functions` array")?
                .to_vec(),
        });
    }
    Ok(helpers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_rank_prefix_matches_indexed_receivers() {
        let manifest = LockManifest::from_entries(vec![
            ("f.rs".into(), "self.shards".into(), 5),
            ("f.rs".into(), "self.wait".into(), 9),
        ]);
        assert_eq!(manifest.rank_of("f.rs", "self.shards[_]"), Some(5));
        assert_eq!(manifest.rank_of("f.rs", "self.wait"), Some(9));
        assert_eq!(manifest.rank_of("other.rs", "self.wait"), None);
        assert_eq!(manifest.rank_of("f.rs", "self.other"), None);
    }

    #[test]
    fn unsafe_manifest_matches_by_path_prefix() {
        let manifest = UnsafeManifest::from_prefixes(vec!["crates/nn/src/simd/".into()]);
        assert!(manifest.allows("crates/nn/src/simd/avx2.rs"));
        assert!(manifest.allows("crates/nn/src/simd/mod.rs"));
        assert!(!manifest.allows("crates/nn/src/mlp.rs"));
        assert!(!manifest.allows("crates/core/src/server.rs"));
    }

    #[test]
    fn seed_manifest_blesses_listed_functions_only() {
        let manifest = SeedManifest::from_entries(vec![(
            "a.rs".into(),
            vec!["good".into(), "also_good".into()],
        )]);
        assert!(manifest.allows("a.rs", "good"));
        assert!(!manifest.allows("a.rs", "bad"));
        assert!(!manifest.allows("b.rs", "good"));
    }
}
