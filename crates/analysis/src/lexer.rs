//! A small hand-rolled Rust lexer: just enough of the surface grammar to let
//! the rule scanners reason about *tokens* instead of raw text.
//!
//! The lexer understands the parts of Rust that defeat regex-based linting:
//!
//! * line comments and **nested** block comments (`/* a /* b */ c */`),
//! * normal strings with escapes and **raw strings with any hash depth**
//!   (`r#"…"#`, `br##"…"##`), byte strings and byte chars,
//! * the `'a` lifetime vs `'x'` char-literal ambiguity,
//! * raw identifiers (`r#match`),
//! * numeric literals (including `0..n` ranges, which must not be eaten as a
//!   float).
//!
//! Macro bodies need no special casing: token trees inside `vec![…]` or
//! `assert!(…)` are lexed like any other tokens, and every delimiter still
//! balances, so the brace-scoped scanner works through them unchanged.

/// What a [`Token`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword; raw identifiers are normalised (the token
    /// for `r#match` carries the text `match` with [`Token::raw`] set).
    Ident,
    /// A lifetime such as `'a` or `'static`; the text excludes the quote.
    Lifetime,
    /// A character or byte-character literal.
    Char,
    /// Any string literal form (normal, raw, byte, raw byte).
    Str,
    /// A numeric literal.
    Number,
    /// A single punctuation character (`::` is two consecutive `:` tokens).
    Punct(char),
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text for identifiers, lifetimes and numbers; empty otherwise.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// True for raw identifiers (`r#ident`).
    pub raw: bool,
}

/// One comment with its span; the rule layer mines these for directives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for line comments).
    pub end_line: u32,
    /// Comment text without the `//` / `/*` framing, untrimmed.
    pub text: String,
    /// True for block comments.
    pub block: bool,
}

/// The output of [`lex`]: the token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments. Unterminated constructs (an
/// unclosed string or block comment) consume to end of input rather than
/// erroring: the analyzer must degrade gracefully on code rustc would reject.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, raw: bool) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            raw,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string();
                    self.retag_last_str_line(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.bump();
                    self.char_body();
                    self.push(TokenKind::Char, String::new(), line, false);
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(),
                'r' if self.peek(1) == Some('#') && is_ident_start(self.peek(2)) => {
                    self.bump();
                    self.bump();
                    let text = self.ident_text();
                    self.push(TokenKind::Ident, text, line, true);
                }
                '\'' => self.lifetime_or_char(),
                c if is_ident_start(Some(c)) => {
                    let text = self.ident_text();
                    self.push(TokenKind::Ident, text, line, false);
                }
                c if c.is_ascii_digit() => self.number(),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct(c), String::new(), line, false);
                }
            }
        }
        self.out
    }

    /// `b"…"` is lexed by delegating to [`Lexer::string`] after the `b`; the
    /// helper fixes the recorded start line back to the prefix (relevant only
    /// for a multi-line literal whose `b` sits at end of line — impossible —
    /// so this is belt and braces).
    fn retag_last_str_line(&mut self, line: u32) {
        if let Some(last) = self.out.tokens.last_mut() {
            last.line = line;
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
            block: false,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text,
            block: true,
        });
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, String::new(), line, false);
    }

    /// True when the cursor sits on `r…"` / `br…"` with zero or more hashes
    /// between the prefix and the quote.
    fn raw_string_ahead(&self) -> bool {
        let mut i = 1; // past the leading `r` / `b`
        if self.peek(0) == Some('b') {
            if self.peek(1) != Some('r') {
                return false;
            }
            i = 2;
        }
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn raw_string(&mut self) {
        let line = self.line;
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Str, String::new(), line, false);
    }

    /// Disambiguates `'a` (lifetime) from `'x'` (char literal). A quote
    /// followed by an escape is always a char; a quote followed by exactly
    /// one scalar and a closing quote is a char; anything else that starts
    /// like an identifier is a lifetime.
    fn lifetime_or_char(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                self.char_body();
                self.push(TokenKind::Char, String::new(), line, false);
            }
            Some(c) if is_ident_start(Some(c)) && self.peek(1) != Some('\'') => {
                let text = self.ident_text();
                self.push(TokenKind::Lifetime, text, line, false);
            }
            _ => {
                self.char_body();
                self.push(TokenKind::Char, String::new(), line, false);
            }
        }
    }

    /// Consumes a char-literal body up to and including the closing quote
    /// (the opening quote is already consumed).
    fn char_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    fn ident_text(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text
    }

    /// Numeric literals, conservatively: digits, `_`, type-suffix letters and
    /// hex digits, plus a `.` **only when followed by a digit** so `0..n`
    /// stays three tokens and `1.0e-3` stays one.
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
                // Exponent sign: `1e-3` / `2.5E+7`.
                if (text.ends_with('e') || text.ends_with('E'))
                    && !text.starts_with("0x")
                    && matches!(self.peek(0), Some('+') | Some('-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    if let Some(sign) = self.bump() {
                        text.push(sign);
                    }
                }
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line, false);
    }
}

fn is_ident_start(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphabetic() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<&str> {
        lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn raw_strings_with_hashes_do_not_leak_tokens() {
        let lexed = lex(r###"let x = r#"quote " and // not a comment"# ; after"###);
        assert_eq!(idents(&lexed), ["let", "x", "after"]);
        assert!(lexed.comments.is_empty());
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            1
        );
    }

    #[test]
    fn raw_byte_strings_and_deep_hashes() {
        let lexed = lex("let y = br##\"inner \"# still\"## ; done");
        assert_eq!(idents(&lexed), ["let", "y", "done"]);
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        let lexed = lex("a /* outer /* inner */ still outer */ b");
        assert_eq!(idents(&lexed), ["a", "b"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; let s = 'static; }");
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a", "static"]);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_identifiers_are_normalised_and_flagged() {
        let lexed = lex("let r#match = r#fn + other;");
        let raws: Vec<(&str, bool)> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text.as_str(), t.raw))
            .collect();
        assert_eq!(
            raws,
            [
                ("let", false),
                ("match", true),
                ("fn", true),
                ("other", false)
            ]
        );
    }

    #[test]
    fn macro_bodies_lex_as_plain_token_trees() {
        let lexed = lex("vec![1, 2]; format!(\"{x}\", x = 'y'); matches!(v, Some(_))");
        assert_eq!(
            idents(&lexed),
            ["vec", "format", "x", "matches", "v", "Some", "_"]
        );
    }

    #[test]
    fn ranges_are_not_floats_and_exponents_are_one_token() {
        let lexed = lex("for i in 0..10 { let f = 1.5e-3; let h = 0xfe; }");
        let numbers: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(numbers, ["0", "10", "1.5e-3", "0xfe"]);
    }

    #[test]
    fn byte_chars_and_escaped_quotes() {
        let lexed = lex(r#"let a = b'\''; let s = "esc \" quote"; trail"#);
        assert_eq!(idents(&lexed), ["let", "a", "let", "s", "trail"]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let lexed = lex("first\n/* two\nlines */\n\"str\nstr\"\nlast");
        let last = lexed.tokens.last().unwrap();
        assert_eq!((last.text.as_str(), last.line), ("last", 6));
        assert_eq!(lexed.comments[0].line, 2);
        assert_eq!(lexed.comments[0].end_line, 3);
    }

    #[test]
    fn line_comment_text_is_captured() {
        let lexed = lex("code(); // analysis: hot_path\nmore();");
        assert_eq!(lexed.comments[0].text, " analysis: hot_path");
        assert_eq!(lexed.comments[0].line, 1);
    }
}
