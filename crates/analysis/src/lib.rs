//! `melissa_analysis` — a project-invariant lint engine for the Melissa
//! workspace, with a ratcheting baseline and a CI gate.
//!
//! The performance work of PRs 3–5 rests on invariants the compiler cannot
//! see: hot paths must not allocate, locks nest in one declared order, every
//! atomic ordering is deliberate, library code never panics, and every RNG
//! stream flows through a versioned seed policy. This crate enforces them
//! mechanically, offline, with zero external dependencies:
//!
//! * a hand-rolled [`lexer`] (nested block comments, raw strings with hash
//!   depth, `'a` vs `'x'`, raw identifiers) feeds
//! * a brace-scoped [`scanner`] (function spans, impl/trait owners,
//!   `#[cfg(test)]` regions, directive comments), over which
//! * the intra-function [`rules`] run, configured by the checked manifests in
//!   [`manifest`] (`analysis/locks.toml`, `analysis/seed_policy.toml`);
//! * a workspace-wide [`symbols`] table feeds the [`callgraph`] (call sites
//!   resolved by receiver-type heuristics, unresolved externals recorded),
//!   which propagates hot-path constraints transitively and powers the
//!   [`lockgraph`] deadlock-cycle detector; and
//! * findings diff against the ratcheting [`baseline`]
//!   (`analysis/baseline.toml`): pre-existing violations are enumerated,
//!   their count may only go down, and new ones fail `check --deny` in CI.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p melissa_analysis -- check            # report
//! cargo run -p melissa_analysis -- check --deny     # the CI gate
//! cargo run -p melissa_analysis -- ratchet          # shrink the baseline
//! cargo run -p melissa_analysis -- verify-baseline  # well-formedness only
//! cargo run -p melissa_analysis -- graph            # call/lock-graph summary
//! cargo run -p melissa_analysis -- graph --check    # cycle + rank-order gate
//! cargo run -p melissa_analysis -- graph --dot      # DOT dumps under target/analysis/
//! ```
//!
//! Annotations understood in source (line comments):
//!
//! * `// analysis: hot_path` — marks the next `fn` allocation-free and
//!   non-blocking, *including everything it transitively calls*;
//! * `// analysis: allow(<rule>, reason = "…")` — grants one line an
//!   exemption (`alloc`, `blocking`, `lock`, `ordering`, `panic`, `seed`),
//!   reason mandatory; on a call-site line it also stops hot-path
//!   propagation through that call;
//! * `// ordering: <why>` — justifies `Ordering::…` on the same line, or a
//!   contiguous run of sites below it.

pub mod baseline;
pub mod callgraph;
pub mod engine;
pub mod lexer;
pub mod lockgraph;
pub mod manifest;
pub mod rules;
pub mod scanner;
pub mod symbols;
pub mod toml_lite;
