//! Whole-workspace graph invariants, pinned as tests: the *real* repository's
//! lock graph must stay cycle-free and consistent with the ranks declared in
//! `analysis/locks.toml`. This is the same gate CI runs via `melissa_analysis
//! graph --check`, duplicated here so a plain `cargo test` catches a
//! regression without the extra binary invocation.

use melissa_analysis::engine::{build_graphs, graph_report, Graphs};
use std::path::Path;

fn workspace_graphs() -> Graphs {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    build_graphs(Path::new(root)).expect("workspace scans cleanly")
}

#[test]
fn workspace_lock_graph_is_cycle_free() {
    let graphs = workspace_graphs();
    let cycles = graphs.locks.cycles();
    assert!(
        cycles.is_empty(),
        "deadlock-capable lock cycle(s) in the workspace:\n{}",
        cycles
            .iter()
            .map(|c| graphs.locks.describe_cycle(c))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn declared_lock_ranks_are_a_topological_order_of_the_inferred_edges() {
    let graphs = workspace_graphs();
    let violations: Vec<String> = graphs
        .locks
        .rank_violations()
        .into_iter()
        .map(|e| {
            format!(
                "{} (rank {:?}) acquired while {} (rank {:?}) is held at {}:{}",
                graphs.locks.nodes[e.to].key,
                graphs.locks.nodes[e.to].rank,
                graphs.locks.nodes[e.from].key,
                graphs.locks.nodes[e.from].rank,
                e.file,
                e.line
            )
        })
        .collect();
    assert!(
        violations.is_empty(),
        "analysis/locks.toml ranks contradict the inferred lock graph:\n{}",
        violations.join("\n")
    );
}

#[test]
fn the_facade_nesting_is_actually_inferred_not_vacuously_absent() {
    // An empty lock graph would make the two gates above pass for the wrong
    // reason. The sharded facade's draw→wait nesting and its closure re-entry
    // into at least one policy's inner mutex must be visible.
    let graphs = workspace_graphs();
    let edge_keys: Vec<(String, String)> = graphs
        .locks
        .edges
        .iter()
        .map(|e| {
            (
                graphs.locks.nodes[e.from].key.clone(),
                graphs.locks.nodes[e.to].key.clone(),
            )
        })
        .collect();
    assert!(
        edge_keys
            .iter()
            .any(|(f, t)| f == "sharded-buffer.draw" && t == "sharded-buffer.wait-gate"),
        "draw→wait-gate edge missing; inferred edges: {edge_keys:?}"
    );
    assert!(
        edge_keys
            .iter()
            .any(|(f, t)| f == "sharded-buffer.draw" && t.ends_with(".inner")),
        "closure re-entry edge into a policy inner mutex missing; inferred edges: {edge_keys:?}"
    );
}

#[test]
fn graph_report_over_the_workspace_passes_and_names_the_gates() {
    let graphs = workspace_graphs();
    let (report, failed) = graph_report(&graphs);
    assert!(!failed, "graph --check would fail:\n{report}");
    assert!(
        report.contains("cycle-free, declared ranks form a topological order"),
        "success line missing from report:\n{report}"
    );
}
