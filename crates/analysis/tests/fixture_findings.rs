//! Line-for-line assertions of every rule's findings over the deliberately
//! seeded violation fixtures in `tests/fixtures/` (which the engine's
//! workspace walk skips, so they never pollute `check --deny`).

use melissa_analysis::manifest::{LockManifest, SeedManifest, UnsafeManifest};
use melissa_analysis::rules::{apply_all, Finding};
use melissa_analysis::scanner::FileModel;

/// Scans one fixture under a synthetic library rel-path and returns its
/// findings as `(rule_key, line)` pairs, sorted.
fn findings_for(
    fixture: &str,
    locks: &LockManifest,
    seeds: &SeedManifest,
    unsafes: &UnsafeManifest,
) -> Vec<(String, u32)> {
    let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    let rel = format!("crates/demo/src/{fixture}");
    let model = FileModel::scan(&rel, &source);
    assert!(
        model.directives.malformed.is_empty(),
        "fixture {fixture} has malformed directives: {:?}",
        model.directives.malformed
    );
    let mut out: Vec<(String, u32)> = apply_all(&model, locks, seeds, unsafes)
        .into_iter()
        .map(|f: Finding| (f.rule.key().to_string(), f.line))
        .collect();
    out.sort();
    out
}

fn expect(pairs: &[(&str, u32)]) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = pairs.iter().map(|(k, l)| (k.to_string(), *l)).collect();
    out.sort();
    out
}

fn empty_manifests() -> (LockManifest, SeedManifest, UnsafeManifest) {
    (
        LockManifest::from_entries(Vec::new()),
        SeedManifest::from_entries(Vec::new()),
        UnsafeManifest::from_prefixes(Vec::new()),
    )
}

#[test]
fn hot_path_fixture_findings_line_for_line() {
    let (locks, seeds, unsafes) = empty_manifests();
    assert_eq!(
        findings_for("hot_path.rs", &locks, &seeds, &unsafes),
        expect(&[
            ("hot_path_alloc", 6),  // vec! macro
            ("hot_path_alloc", 7),  // .to_vec()
            ("hot_path_alloc", 8),  // Vec::new
            ("hot_path_alloc", 31), // hot_path marker applies inside #[cfg(test)] too
        ])
    );
}

#[test]
fn lock_fixture_findings_line_for_line() {
    let locks = LockManifest::from_entries(vec![
        ("crates/demo/src/locks.rs".into(), "self.first".into(), 10),
        ("crates/demo/src/locks.rs".into(), "self.second".into(), 20),
    ]);
    let seeds = SeedManifest::from_entries(Vec::new());
    let unsafes = UnsafeManifest::from_prefixes(Vec::new());
    assert_eq!(
        findings_for("locks.rs", &locks, &seeds, &unsafes),
        expect(&[
            ("lock_discipline", 20), // rank 10 acquired under rank 20
            ("lock_discipline", 27), // undeclared receiver while a guard is held
        ])
    );
}

#[test]
fn ordering_fixture_findings_line_for_line() {
    let (locks, seeds, unsafes) = empty_manifests();
    assert_eq!(
        findings_for("ordering.rs", &locks, &seeds, &unsafes),
        expect(&[
            ("atomic_ordering", 23), // no justification at all
            ("atomic_ordering", 31), // justified run interrupted by a non-site line
        ])
    );
}

#[test]
fn panic_fixture_findings_line_for_line() {
    let (locks, seeds, unsafes) = empty_manifests();
    assert_eq!(
        findings_for("panics.rs", &locks, &seeds, &unsafes),
        expect(&[
            ("panic_surface", 4),  // .unwrap()
            ("panic_surface", 8),  // .expect()
            ("panic_surface", 12), // panic!
            ("panic_surface", 16), // todo!
        ])
    );
}

#[test]
fn panic_fixture_is_exempt_in_test_context() {
    let (locks, seeds, unsafes) = empty_manifests();
    let path = format!("{}/tests/fixtures/panics.rs", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(path).expect("fixture readable");
    // The same source under a tests/ rel-path: the panic rule stands down.
    let model = FileModel::scan("crates/demo/tests/panics.rs", &source);
    let findings = apply_all(&model, &locks, &seeds, &unsafes);
    assert!(
        findings.is_empty(),
        "test-context file should produce no findings, got {findings:?}"
    );
}

#[test]
fn seed_fixture_findings_line_for_line() {
    let locks = LockManifest::from_entries(Vec::new());
    let seeds = SeedManifest::from_entries(vec![(
        "crates/demo/src/seeds.rs".into(),
        vec!["blessed_helper".into()],
    )]);
    let unsafes = UnsafeManifest::from_prefixes(Vec::new());
    assert_eq!(
        findings_for("seeds.rs", &locks, &seeds, &unsafes),
        expect(&[
            ("seed_policy", 11), // construction outside a blessed helper
            ("seed_policy", 17), // draw outside a blessed helper
        ])
    );
}

#[test]
fn unsafe_fixture_findings_line_for_line() {
    let (locks, seeds, unsafes) = empty_manifests();
    assert_eq!(
        findings_for("unsafes.rs", &locks, &seeds, &unsafes),
        expect(&[
            ("unsafe_scope", 4),  // unsafe fn
            ("unsafe_scope", 9),  // unsafe {…} block
            ("unsafe_scope", 14), // unsafe impl Send
        ])
    );
}

#[test]
fn audited_prefix_exempts_the_unsafe_fixture() {
    let locks = LockManifest::from_entries(Vec::new());
    let seeds = SeedManifest::from_entries(Vec::new());
    let unsafes = UnsafeManifest::from_prefixes(vec!["crates/demo/src/".to_string()]);
    let findings = findings_for("unsafes.rs", &locks, &seeds, &unsafes);
    assert!(
        findings.iter().all(|(rule, _)| rule != "unsafe_scope"),
        "{findings:?}"
    );
}

#[test]
fn lexer_hardening_fixture_findings_line_for_line() {
    let (locks, seeds, unsafes) = empty_manifests();
    assert_eq!(
        findings_for("lexer_hardening.rs", &locks, &seeds, &unsafes),
        expect(&[
            ("hot_path_alloc", 20), // vec! — first site after the hostile block
            ("hot_path_alloc", 21), // inner .collect() inside the closure
            ("hot_path_alloc", 21), // .collect::<Vec<Vec<char>>>() behind nested turbofish
            ("hot_path_alloc", 22), // String::from — the tail must not be masked
        ])
    );
}

#[test]
fn fixture_fingerprints_are_line_free_and_stable() {
    let (locks, seeds, unsafes) = empty_manifests();
    let path = format!("{}/tests/fixtures/panics.rs", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(path).expect("fixture readable");
    let model = FileModel::scan("crates/demo/src/panics.rs", &source);
    let findings = apply_all(&model, &locks, &seeds, &unsafes);
    // Prepend a comment line: every finding moves down one line, but the
    // ratchet fingerprints must not change.
    let shifted = format!("// shifted\n{source}");
    let shifted_model = FileModel::scan("crates/demo/src/panics.rs", &shifted);
    let shifted_findings = apply_all(&shifted_model, &locks, &seeds, &unsafes);
    let stems: Vec<String> = findings.iter().map(Finding::fingerprint_stem).collect();
    let shifted_stems: Vec<String> = shifted_findings
        .iter()
        .map(Finding::fingerprint_stem)
        .collect();
    assert_eq!(stems, shifted_stems);
    assert_ne!(
        findings.iter().map(|f| f.line).collect::<Vec<_>>(),
        shifted_findings.iter().map(|f| f.line).collect::<Vec<_>>(),
    );
}
