//! Fixture: lock-discipline rule, against a manifest declaring
//! `self.first` rank 10 and `self.second` rank 20 for this file.

pub struct Pair {
    first: std::sync::Mutex<u32>,
    second: std::sync::Mutex<u32>,
    rogue: std::sync::Mutex<u32>,
}

impl Pair {
    pub fn documented_order(&self) {
        let a = self.first.lock();
        let b = self.second.lock(); // ranks ascend: fine
        drop(b);
        drop(a);
    }

    pub fn inverted_order(&self) {
        let b = self.second.lock();
        let a = self.first.lock(); // line 20: rank 10 under rank 20
        drop(a);
        drop(b);
    }

    pub fn undeclared_under_guard(&self) {
        let a = self.first.lock();
        let r = self.rogue.lock(); // line 27: undeclared receiver while a guard is held
        drop(r);
        drop(a);
    }

    pub fn sequential_is_fine(&self) {
        let b = self.second.lock();
        drop(b);
        let a = self.first.lock(); // previous guard dropped: fine
        drop(a);
    }

    pub fn granted_inversion(&self) {
        let b = self.second.lock();
        // analysis: allow(lock, reason = "fixture: deliberate inversion")
        let a = self.first.lock();
        drop(a);
        drop(b);
    }
}
