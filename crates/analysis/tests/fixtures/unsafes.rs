//! Seeded violations for the unsafe-scope rule: `unsafe` constructs in a
//! library file that no `analysis/unsafe.toml` prefix covers.

unsafe fn deref_raw(p: *const f32) -> f32 {
    *p
}

pub fn block_site(p: *const f32) -> f32 {
    unsafe { deref_raw(p) }
}

pub struct Holder(*mut f32);

unsafe impl Send for Holder {}

pub fn granted(p: *const f32) -> f32 {
    // analysis: allow(unsafe, reason = "caller contract guarantees a valid pointer")
    unsafe { deref_raw(p) }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_unsafe_is_exempt() {
        let x = 1.0f32;
        let y = unsafe { super::deref_raw(&x) };
        assert_eq!(x, y);
    }
}
