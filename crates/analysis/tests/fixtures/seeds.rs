//! Fixture: seed-policy rule, against a manifest blessing only
//! `blessed_helper` in this file.

pub fn blessed_helper(seed: u64) -> u64 {
    let rng = ChaCha8Rng::seed_from_u64(seed); // blessed by the manifest
    std::hint::black_box(&rng);
    seed
}

pub fn rogue_constructor(seed: u64) -> u64 {
    let rng = ChaCha8Rng::seed_from_u64(seed); // line 11: not blessed
    std::hint::black_box(&rng);
    seed
}

pub fn rogue_draw(rng: &mut SomeRng) -> usize {
    rng.gen_range(0..10) // line 17: draws outside a blessed helper
}

pub fn granted(seed: u64) -> u64 {
    // analysis: allow(seed, reason = "fixture: derived stream documented here")
    let rng = ChaCha8Rng::seed_from_u64(seed);
    std::hint::black_box(&rng);
    seed
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_seed_ad_hoc() {
        let rng = ChaCha8Rng::seed_from_u64(7);
        std::hint::black_box(&rng);
    }
}
