//! Fixture: atomic-ordering audit.

use std::sync::atomic::{AtomicUsize, Ordering};

pub static COUNTER: AtomicUsize = AtomicUsize::new(0);

pub fn justified_same_line() -> usize {
    COUNTER.load(Ordering::Relaxed) // ordering: Relaxed — fixture tally
}

pub fn justified_line_above() {
    // ordering: Relaxed — fixture tally
    COUNTER.fetch_add(1, Ordering::Relaxed);
}

pub fn justified_run() {
    // ordering: Relaxed for both — fixture tallies with no cross-site invariant
    COUNTER.fetch_add(1, Ordering::Relaxed);
    COUNTER.fetch_add(2, Ordering::Relaxed);
}

pub fn unjustified() {
    COUNTER.fetch_add(1, Ordering::SeqCst); // line 23: no ordering comment
}

pub fn run_broken_by_code() {
    // ordering: Relaxed — covers only the adjacent site below
    COUNTER.fetch_add(1, Ordering::Relaxed);
    let x = COUNTER.load(Ordering::Relaxed); // covered: still contiguous with the run
    std::hint::black_box(x);
    COUNTER.fetch_add(1, Ordering::Relaxed); // line 31: run interrupted by non-site line
}
