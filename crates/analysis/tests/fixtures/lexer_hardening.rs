//! Lexer-hardening fixture: hostile surface syntax wrapped around a handful
//! of genuine allocation sites. Content inside raw strings, byte strings,
//! nested block comments and char literals must stay inert, and the genuine
//! sites *after* the hostile constructs must still register — a lexer that
//! loses sync either invents findings from literal content or masks the tail.

pub struct Holder<'buf, T> {
    slice: &'buf [T],
}

// analysis: hot_path
pub fn hardened<'a>(input: &'a str) -> usize {
    let decoy = r#"Vec::new() vec![1] .to_vec() // analysis: hot_path"#;
    let deeper = r##"a closing "# inside, still one string: Box::new(0)"##;
    let bytes = br#"String::from("x")"#;
    /* outer /* nested Vec::new() */ still a comment: .to_vec() */
    let quote = '"';
    let escaped = '\'';
    let byte = b'\'';
    let grid = vec![input; 2];
    let nested = input.lines().map(|l| l.chars().collect()).collect::<Vec<Vec<char>>>();
    let tail = String::from(decoy);
    grid.len() + nested.len() + tail.len() + deeper.len() + bytes.len()
        + quote.len_utf8() + escaped.len_utf8() + byte as usize
}
