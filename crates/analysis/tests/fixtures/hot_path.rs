//! Fixture: hot-path allocation rule. Scanned by `fixture_findings.rs` with a
//! library rel-path; the engine's workspace walk skips `fixtures/` directories.

// analysis: hot_path
pub fn hot_with_violations(xs: &[u32]) -> usize {
    let grown = vec![0u32; xs.len()]; // line 6: vec! macro
    let copied = xs.to_vec(); // line 7: .to_vec()
    let mut scratch: Vec<u32> = Vec::new(); // line 8: Vec::new
    scratch.extend_from_slice(&copied);
    grown.len() + scratch.len()
}

// analysis: hot_path
pub fn hot_with_grant(xs: &[u32]) -> Vec<u32> {
    // analysis: allow(alloc, reason = "the returned buffer is the output")
    let mut out = Vec::with_capacity(xs.len());
    out.extend_from_slice(xs);
    out
}

pub fn cold_allocates_freely(xs: &[u32]) -> Vec<u32> {
    let mut out = xs.to_vec();
    out.push(0);
    out
}

#[cfg(test)]
mod tests {
    // analysis: hot_path
    fn hot_in_tests_is_still_checked() -> Vec<u32> {
        Vec::new() // line 31: hot_path applies inside tests too
    }
}
