//! Fixture: panic-surface rule.

pub fn unwraps(v: Option<u32>) -> u32 {
    v.unwrap() // line 4
}

pub fn expects(v: Option<u32>) -> u32 {
    v.expect("fixture") // line 8
}

pub fn panics() {
    panic!("fixture"); // line 12
}

pub fn todos() {
    todo!() // line 16
}

pub fn granted(v: Option<u32>) -> u32 {
    // analysis: allow(panic, reason = "fixture: documented invariant")
    v.expect("granted")
}

pub fn clean(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
