//! # melissa-transport
//!
//! The client/server data plane of the Melissa reproduction: the paper streams
//! every computed time step from the simulation clients to the training server
//! through direct memory-to-memory ZMQ connections, with each client connected
//! to *all* server ranks and distributing its time steps round-robin so the
//! data-parallel learners stay balanced (§3.2.2). Clients may fail and restart;
//! the server keeps a log of received messages per client so replayed messages
//! are discarded (§3.1).
//!
//! This crate replaces the network with an in-process message fabric built on
//! bounded crossbeam channels:
//!
//! * [`Fabric`] — creates the server-side endpoints (one per ingest shard of
//!   each server rank; one shard per rank by default) and hands out client
//!   connections. Channel capacity bounds play the role of the ZMQ high-water
//!   mark and provide backpressure. Time steps are routed to a rank
//!   round-robin and, within the rank, to the shard given by [`stable_shard`]
//!   over their simulation id, so per-simulation order is preserved.
//! * [`ClientApi`] — the three-call instrumentation API of the paper
//!   (`init_communication`, `send`, `finalize_communication`), including the
//!   round-robin dispatch with a client-id-dependent starting rank.
//! * [`ServerEndpoint`] — the per-rank receive side polled by the data
//!   aggregator thread.
//! * [`MessageLog`] — per-client sequence tracking used to discard duplicate
//!   messages after a client restart.
//! * [`FaultInjector`] — drops, duplicates or delays messages to exercise the
//!   fault-tolerance paths in tests and experiments.
//! * Wire-format encoding of messages through `bytes`, so the harness can
//!   account for transferred volume the way the paper reports dataset sizes.
//! * [`Checksum64`]/[`fingerprint64`] — the splitmix64-based streaming
//!   checksum framing durable checkpoints and journals on disk (§3.1's
//!   restart-from-checkpoint protocol made crash-safe).

pub mod checksum;
pub mod client;
pub mod dedup;
pub mod fabric;
pub mod fault;
pub mod message;
pub mod stats;

pub use checksum::{fingerprint64, Checksum64};
pub use client::{ClientApi, ClientConnection};
pub use dedup::MessageLog;
pub use fabric::{stable_shard, Fabric, FabricConfig, ServerEndpoint};
pub use fault::{
    ClientFaultKind, Delivery, FaultConfig, FaultEvent, FaultInjector, FaultPlan,
    ScriptedClientFault,
};
pub use message::{Message, SamplePayload};
pub use stats::TransportStats;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_roundtrip() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 2,
            channel_capacity: 16,
            ..FabricConfig::default()
        });
        let endpoints = fabric.server_endpoints();
        let client = fabric.connect_client(0);
        let payload = SamplePayload {
            simulation_id: 0,
            step: 0,
            time: 0.01,
            parameters: vec![300.0; 5],
            values: vec![1.0, 2.0, 3.0],
        };
        client.send(payload.clone()).unwrap();
        client.finalize().unwrap();
        let mut received = 0;
        for ep in &endpoints {
            while let Some(msg) = ep.try_recv() {
                if let Message::TimeStep { payload: p, .. } = msg {
                    assert_eq!(p.values, payload.values);
                    received += 1;
                }
            }
        }
        assert_eq!(received, 1);
    }
}
