//! Transport-level instrumentation counters.

use serde::{Deserialize, Serialize};

/// Counters describing the traffic that went through a fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Time-step messages sent by clients.
    pub messages_sent: usize,
    /// Time-step messages delivered to server endpoints.
    pub messages_delivered: usize,
    /// Messages dropped by the fault injector.
    pub messages_dropped: usize,
    /// Messages duplicated by the fault injector.
    pub messages_duplicated: usize,
    /// Total payload bytes sent by clients (the paper's "dataset size").
    pub bytes_sent: u64,
    /// Number of client connections opened.
    pub connections: usize,
    /// Number of finalize messages received.
    pub finalized_clients: usize,
}

impl TransportStats {
    /// Dataset size in gigabytes (10⁹ bytes), as the paper reports it.
    pub fn gigabytes_sent(&self) -> f64 {
        self.bytes_sent as f64 / 1e9
    }

    /// Fraction of sent messages that were dropped.
    pub fn drop_fraction(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.messages_dropped as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabyte_conversion() {
        let stats = TransportStats {
            bytes_sent: 2_500_000_000,
            ..TransportStats::default()
        };
        assert!((stats.gigabytes_sent() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn drop_fraction_handles_zero() {
        assert_eq!(TransportStats::default().drop_fraction(), 0.0);
        let stats = TransportStats {
            messages_sent: 10,
            messages_dropped: 2,
            ..TransportStats::default()
        };
        assert!((stats.drop_fraction() - 0.2).abs() < 1e-12);
    }
}
