//! Transport-level instrumentation counters.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Counters describing the traffic that went through a fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Time-step messages sent by clients.
    pub messages_sent: usize,
    /// Time-step messages delivered to server endpoints.
    pub messages_delivered: usize,
    /// Messages dropped by the fault injector.
    pub messages_dropped: usize,
    /// Messages duplicated by the fault injector.
    pub messages_duplicated: usize,
    /// Total payload bytes sent by clients (the paper's "dataset size").
    pub bytes_sent: u64,
    /// Number of client connections opened.
    pub connections: usize,
    /// Number of finalize messages received.
    pub finalized_clients: usize,
}

impl TransportStats {
    /// Dataset size in gigabytes (10⁹ bytes), as the paper reports it.
    pub fn gigabytes_sent(&self) -> f64 {
        self.bytes_sent as f64 / 1e9
    }

    /// Fraction of sent messages that were dropped.
    pub fn drop_fraction(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.messages_dropped as f64 / self.messages_sent as f64
        }
    }
}

/// The fabric's live traffic accumulator: every counter is a relaxed atomic,
/// so the per-message send/receive accounting is lock-free — clients and
/// endpoints never contend on a stats mutex in the hot path. Snapshots
/// materialise the plain [`TransportStats`] POD.
#[derive(Debug, Default)]
pub(crate) struct StatsCell {
    pub messages_sent: AtomicUsize,
    pub messages_delivered: AtomicUsize,
    pub messages_dropped: AtomicUsize,
    pub messages_duplicated: AtomicUsize,
    pub bytes_sent: AtomicU64,
    pub connections: AtomicUsize,
    pub finalized_clients: AtomicUsize,
}

impl StatsCell {
    /// A coherent-enough snapshot of the counters (relaxed loads; exact once
    /// the traffic has quiesced, which is when reports read it).
    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            // ordering: Relaxed for the whole snapshot — monotonic counters with no cross-field invariant; reports read them after traffic quiesces
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            messages_delivered: self.messages_delivered.load(Ordering::Relaxed),
            messages_dropped: self.messages_dropped.load(Ordering::Relaxed),
            messages_duplicated: self.messages_duplicated.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            finalized_clients: self.finalized_clients.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_cell_snapshot_materialises_counters() {
        let cell = StatsCell::default();
        // ordering: Relaxed — single-threaded test; any ordering observes its own writes
        cell.messages_sent.fetch_add(3, Ordering::Relaxed);
        cell.bytes_sent.fetch_add(1024, Ordering::Relaxed);
        cell.finalized_clients.fetch_add(1, Ordering::Relaxed);
        let snap = cell.snapshot();
        assert_eq!(snap.messages_sent, 3);
        assert_eq!(snap.bytes_sent, 1024);
        assert_eq!(snap.finalized_clients, 1);
        assert_eq!(snap.messages_dropped, 0);
    }

    #[test]
    fn gigabyte_conversion() {
        let stats = TransportStats {
            bytes_sent: 2_500_000_000,
            ..TransportStats::default()
        };
        assert!((stats.gigabytes_sent() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn drop_fraction_handles_zero() {
        assert_eq!(TransportStats::default().drop_fraction(), 0.0);
        let stats = TransportStats {
            messages_sent: 10,
            messages_dropped: 2,
            ..TransportStats::default()
        };
        assert!((stats.drop_fraction() - 0.2).abs() < 1e-12);
    }
}
