//! The in-process message fabric connecting clients to server ranks.
//!
//! Every client holds one bounded channel to *each* server rank (the paper's
//! clients connect to all the ranks of the server); the channel capacity plays
//! the role of the ZMQ high-water mark and provides backpressure when the
//! server-side aggregator cannot keep up.

use crate::fault::{Delivery, FaultConfig, FaultInjector};
use crate::message::Message;
use crate::stats::{StatsCell, TransportStats};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Construction parameters of a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricConfig {
    /// Number of server ranks (one data-aggregator thread each).
    pub num_server_ranks: usize,
    /// Capacity of each rank's inbound channel (the ZMQ high-water mark stand-in).
    pub channel_capacity: usize,
    /// Fault-injection configuration applied to every sent message.
    pub fault: FaultConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            num_server_ranks: 1,
            channel_capacity: 1024,
            fault: FaultConfig::none(),
        }
    }
}

/// The shared data plane: holds the per-rank channels, the fault injector and
/// the traffic counters.
pub struct Fabric {
    config: FabricConfig,
    senders: Vec<Sender<Message>>,
    receivers: Vec<Receiver<Message>>,
    injector: Arc<FaultInjector>,
    stats: Arc<StatsCell>,
}

impl Fabric {
    /// Creates the fabric for the requested number of server ranks.
    ///
    /// # Panics
    /// Panics when the rank count or the channel capacity is zero.
    pub fn new(config: FabricConfig) -> Self {
        assert!(config.num_server_ranks > 0, "need at least one server rank");
        assert!(
            config.channel_capacity > 0,
            "channel capacity must be positive"
        );
        let mut senders = Vec::with_capacity(config.num_server_ranks);
        let mut receivers = Vec::with_capacity(config.num_server_ranks);
        for _ in 0..config.num_server_ranks {
            let (tx, rx) = bounded(config.channel_capacity);
            senders.push(tx);
            receivers.push(rx);
        }
        Self {
            config,
            senders,
            receivers,
            injector: Arc::new(FaultInjector::new(config.fault)),
            stats: Arc::new(StatsCell::default()),
        }
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Number of server ranks.
    pub fn num_server_ranks(&self) -> usize {
        self.config.num_server_ranks
    }

    /// Builds the per-rank receive endpoints polled by the aggregator threads.
    pub fn server_endpoints(&self) -> Vec<ServerEndpoint> {
        self.receivers
            .iter()
            .cloned()
            .enumerate()
            .map(|(rank, receiver)| ServerEndpoint {
                rank,
                receiver,
                stats: Arc::clone(&self.stats),
            })
            .collect()
    }

    /// Opens a connection for a client; the returned handle owns one sender per
    /// server rank and performs the round-robin dispatch of §3.2.2.
    pub fn connect_client(&self, client_id: u64) -> crate::client::ClientConnection {
        self.stats.connections.fetch_add(1, Ordering::Relaxed);
        crate::client::ClientConnection::new(
            client_id,
            self.senders.clone(),
            Arc::clone(&self.injector),
            Arc::clone(&self.stats),
        )
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }
}

/// The receive side of one server rank, polled by its data-aggregator thread.
pub struct ServerEndpoint {
    rank: usize,
    receiver: Receiver<Message>,
    stats: Arc<StatsCell>,
}

impl ServerEndpoint {
    /// The rank this endpoint belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        match self.receiver.try_recv() {
            Ok(msg) => {
                self.account(&msg);
                Some(msg)
            }
            Err(_) => None,
        }
    }

    /// Non-blocking batched receive: drains up to `max` queued messages into
    /// `out` (appended) under a single channel lock, with a single sender
    /// wake-up and a single traffic-counter update for the whole burst —
    /// the aggregator's steady-state drain path. Returns the number of
    /// messages moved.
    pub fn try_recv_many(&self, out: &mut Vec<Message>, max: usize) -> usize {
        let before = out.len();
        let moved = self.receiver.recv_many(out, max);
        if moved == 0 {
            return 0;
        }
        let mut delivered = 0usize;
        let mut finalized = 0usize;
        for msg in &out[before..] {
            match msg {
                Message::TimeStep { .. } => delivered += 1,
                Message::Finalize { .. } => finalized += 1,
                Message::Connect { .. } => {}
            }
        }
        self.stats
            .messages_delivered
            .fetch_add(delivered, Ordering::Relaxed);
        self.stats
            .finalized_clients
            .fetch_add(finalized, Ordering::Relaxed);
        moved
    }

    /// Blocking receive with a timeout; `None` on timeout or when every sender
    /// side has been dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        match self.receiver.recv_timeout(timeout) {
            Ok(msg) => {
                self.account(&msg);
                Some(msg)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Number of messages currently queued for this rank.
    pub fn queued(&self) -> usize {
        self.receiver.len()
    }

    fn account(&self, msg: &Message) {
        match msg {
            Message::TimeStep { .. } => {
                self.stats
                    .messages_delivered
                    .fetch_add(1, Ordering::Relaxed);
            }
            Message::Finalize { .. } => {
                self.stats.finalized_clients.fetch_add(1, Ordering::Relaxed);
            }
            Message::Connect { .. } => {}
        }
    }
}

/// Internal hook used by [`crate::client::ClientConnection`] to record a send
/// — lock-free, so concurrent clients never contend on the counters.
pub(crate) fn record_send(stats: &StatsCell, bytes: usize, delivery: Delivery) {
    stats.messages_sent.fetch_add(1, Ordering::Relaxed);
    stats.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    match delivery {
        Delivery::Drop => {
            stats.messages_dropped.fetch_add(1, Ordering::Relaxed);
        }
        Delivery::Duplicate => {
            stats.messages_duplicated.fetch_add(1, Ordering::Relaxed);
        }
        Delivery::Deliver => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::SamplePayload;

    fn payload(step: usize) -> SamplePayload {
        SamplePayload {
            simulation_id: 1,
            step,
            time: step as f64 * 0.01,
            parameters: vec![300.0; 5],
            values: vec![0.0; 8],
        }
    }

    #[test]
    fn round_robin_balances_ranks() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 4,
            channel_capacity: 128,
            ..FabricConfig::default()
        });
        let endpoints = fabric.server_endpoints();
        let client = fabric.connect_client(0);
        for step in 0..40 {
            client.send(payload(step)).unwrap();
        }
        let counts: Vec<usize> = endpoints.iter().map(|e| e.queued()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 40);
        for &c in &counts {
            assert_eq!(c, 10, "round-robin must balance exactly: {counts:?}");
        }
    }

    #[test]
    fn client_id_offsets_first_destination() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 3,
            channel_capacity: 8,
            ..FabricConfig::default()
        });
        let endpoints = fabric.server_endpoints();
        // Client 1 starts at rank 1, client 2 at rank 2 (client_id mod ranks).
        let c1 = fabric.connect_client(1);
        c1.send(payload(0)).unwrap();
        let c2 = fabric.connect_client(2);
        c2.send(payload(0)).unwrap();
        assert_eq!(endpoints[0].queued(), 0);
        assert_eq!(endpoints[1].queued(), 1);
        assert_eq!(endpoints[2].queued(), 1);
    }

    #[test]
    fn finalize_reaches_every_rank() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 3,
            channel_capacity: 8,
            ..FabricConfig::default()
        });
        let endpoints = fabric.server_endpoints();
        let client = fabric.connect_client(5);
        client.finalize().unwrap();
        for ep in &endpoints {
            let msg = ep.try_recv().expect("finalize delivered");
            assert!(matches!(msg, Message::Finalize { client_id: 5, .. }));
        }
        assert_eq!(fabric.stats().finalized_clients, 3);
    }

    #[test]
    fn dropped_messages_never_arrive() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 1,
            channel_capacity: 256,
            fault: FaultConfig {
                drop_probability: 1.0,
                ..FaultConfig::default()
            },
        });
        let endpoints = fabric.server_endpoints();
        let client = fabric.connect_client(0);
        for step in 0..10 {
            client.send(payload(step)).unwrap();
        }
        assert!(endpoints[0].try_recv().is_none());
        let stats = fabric.stats();
        assert_eq!(stats.messages_sent, 10);
        assert_eq!(stats.messages_dropped, 10);
        assert_eq!(stats.messages_delivered, 0);
    }

    #[test]
    fn duplicated_messages_arrive_twice() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 1,
            channel_capacity: 256,
            fault: FaultConfig {
                duplicate_probability: 1.0,
                ..FaultConfig::default()
            },
        });
        let endpoints = fabric.server_endpoints();
        let client = fabric.connect_client(0);
        client.send(payload(0)).unwrap();
        assert!(endpoints[0].try_recv().is_some());
        assert!(endpoints[0].try_recv().is_some());
        assert!(endpoints[0].try_recv().is_none());
    }

    #[test]
    fn stats_count_bytes() {
        let fabric = Fabric::new(FabricConfig::default());
        let client = fabric.connect_client(0);
        client.send(payload(0)).unwrap();
        let stats = fabric.stats();
        assert!(stats.bytes_sent > 0);
        assert_eq!(stats.connections, 1);
    }

    #[test]
    fn try_recv_many_drains_in_order_with_batched_accounting() {
        let fabric = Fabric::new(FabricConfig::default());
        let endpoints = fabric.server_endpoints();
        let client = fabric.connect_client(0);
        for step in 0..7 {
            client.send(payload(step)).unwrap();
        }
        client.finalize().unwrap();
        let mut out = Vec::new();
        assert_eq!(endpoints[0].try_recv_many(&mut out, 5), 5);
        assert_eq!(
            endpoints[0].try_recv_many(&mut out, 64),
            3,
            "2 steps + finalize"
        );
        assert_eq!(endpoints[0].try_recv_many(&mut out, 64), 0);
        let steps: Vec<usize> = out
            .iter()
            .filter_map(|m| match m {
                Message::TimeStep { payload, .. } => Some(payload.step),
                _ => None,
            })
            .collect();
        assert_eq!(steps, (0..7).collect::<Vec<_>>());
        let stats = fabric.stats();
        assert_eq!(stats.messages_delivered, 7);
        assert_eq!(stats.finalized_clients, 1);
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let fabric = Fabric::new(FabricConfig::default());
        let endpoints = fabric.server_endpoints();
        let start = std::time::Instant::now();
        assert!(endpoints[0]
            .recv_timeout(Duration::from_millis(20))
            .is_none());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    #[should_panic(expected = "at least one server rank")]
    fn zero_ranks_rejected() {
        let _ = Fabric::new(FabricConfig {
            num_server_ranks: 0,
            ..FabricConfig::default()
        });
    }
}
