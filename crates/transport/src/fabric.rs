//! The in-process message fabric connecting clients to server ranks.
//!
//! Every client holds one bounded channel to *each* server rank (the paper's
//! clients connect to all the ranks of the server); the channel capacity plays
//! the role of the ZMQ high-water mark and provides backpressure when the
//! server-side aggregator cannot keep up.
//!
//! ## Sharded ranks
//!
//! A rank's inbound path can be split into [`FabricConfig::shards_per_rank`]
//! **ingest shards**: one bounded channel and one lock-free stats cell per
//! shard, each drained by its own aggregator worker thread. Time-step messages are
//! routed to the shard given by [`stable_shard`] over their simulation id, so
//! every message of one simulation lands on the same shard of a rank —
//! per-simulation arrival order is preserved exactly as with one channel.
//! With one shard per rank (the default) the routing degenerates to the
//! single channel of the unsharded design, byte for byte.

use crate::fault::{Delivery, FaultConfig, FaultInjector};
use crate::message::Message;
use crate::stats::{StatsCell, TransportStats};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The shard of one rank that receives messages of `simulation_id`: a stable
/// (splitmix64) hash, so the mapping depends on nothing but the simulation id
/// and the shard count. With `shards == 1` every simulation maps to shard 0.
pub fn stable_shard(simulation_id: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut z = simulation_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// Construction parameters of a [`Fabric`].
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// Number of server ranks (one aggregator per rank, or one per shard).
    pub num_server_ranks: usize,
    /// Ingest shards per rank: inbound channels (and aggregator workers)
    /// every rank runs. 1 reproduces the single-aggregator design exactly.
    pub shards_per_rank: usize,
    /// Capacity of each shard's inbound channel (the ZMQ high-water mark stand-in).
    pub channel_capacity: usize,
    /// Fault-injection configuration applied to every sent message.
    pub fault: FaultConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            num_server_ranks: 1,
            shards_per_rank: 1,
            channel_capacity: 1024,
            fault: FaultConfig::none(),
        }
    }
}

/// The shared data plane: holds the per-rank, per-shard channels, the fault
/// injector and the traffic counters.
pub struct Fabric {
    config: FabricConfig,
    /// Send sides, indexed `[rank][shard]`.
    senders: Vec<Vec<Sender<Message>>>,
    /// Receive sides, indexed `[rank][shard]`.
    receivers: Vec<Vec<Receiver<Message>>>,
    injector: Arc<FaultInjector>,
    /// Client-side counters (sends, bytes, drops, duplicates, connections).
    stats: Arc<StatsCell>,
    /// Server-side counters (deliveries, finalizes), one cell per shard so
    /// concurrent shard workers never share a counter cache line by design.
    shard_stats: Vec<Vec<Arc<StatsCell>>>,
}

impl Fabric {
    /// Creates the fabric for the requested number of server ranks.
    ///
    /// # Panics
    /// Panics when the rank count, the shard count or the channel capacity is
    /// zero.
    pub fn new(config: FabricConfig) -> Self {
        assert!(config.num_server_ranks > 0, "need at least one server rank");
        assert!(
            config.shards_per_rank > 0,
            "need at least one ingest shard per rank"
        );
        assert!(
            config.channel_capacity > 0,
            "channel capacity must be positive"
        );
        let mut senders = Vec::with_capacity(config.num_server_ranks);
        let mut receivers = Vec::with_capacity(config.num_server_ranks);
        let mut shard_stats = Vec::with_capacity(config.num_server_ranks);
        for _ in 0..config.num_server_ranks {
            let mut rank_tx = Vec::with_capacity(config.shards_per_rank);
            let mut rank_rx = Vec::with_capacity(config.shards_per_rank);
            let mut rank_stats = Vec::with_capacity(config.shards_per_rank);
            for _ in 0..config.shards_per_rank {
                let (tx, rx) = bounded(config.channel_capacity);
                rank_tx.push(tx);
                rank_rx.push(rx);
                rank_stats.push(Arc::new(StatsCell::default()));
            }
            senders.push(rank_tx);
            receivers.push(rank_rx);
            shard_stats.push(rank_stats);
        }
        let injector = Arc::new(FaultInjector::new(config.fault.clone()));
        Self {
            config,
            senders,
            receivers,
            injector,
            stats: Arc::new(StatsCell::default()),
            shard_stats,
        }
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Number of server ranks.
    pub fn num_server_ranks(&self) -> usize {
        self.config.num_server_ranks
    }

    /// Ingest shards per rank.
    pub fn shards_per_rank(&self) -> usize {
        self.config.shards_per_rank
    }

    /// Builds the per-rank receive endpoints polled by the aggregator threads
    /// of an **unsharded** fabric (one endpoint per rank).
    ///
    /// # Panics
    /// Panics when the fabric is sharded — use
    /// [`Fabric::rank_shard_endpoints`] there, which exposes every shard.
    pub fn server_endpoints(&self) -> Vec<ServerEndpoint> {
        assert_eq!(
            self.config.shards_per_rank, 1,
            "server_endpoints() addresses one endpoint per rank; \
             a sharded fabric must use rank_shard_endpoints()"
        );
        self.rank_shard_endpoints()
            .into_iter()
            .map(|mut shards| shards.remove(0))
            .collect()
    }

    /// Builds every receive endpoint, indexed `[rank][shard]` — one per
    /// aggregator shard worker.
    pub fn rank_shard_endpoints(&self) -> Vec<Vec<ServerEndpoint>> {
        self.receivers
            .iter()
            .enumerate()
            .map(|(rank, rank_rx)| {
                rank_rx
                    .iter()
                    .enumerate()
                    .map(|(shard, receiver)| ServerEndpoint {
                        rank,
                        shard,
                        receiver: receiver.clone(),
                        stats: Arc::clone(&self.shard_stats[rank][shard]),
                        stall: self.config.fault.plan.shard_stall(rank, shard).map(
                            |(after_messages, stall)| ShardStallState {
                                after_messages,
                                stall,
                                drained: AtomicUsize::new(0),
                                fired: AtomicBool::new(false),
                            },
                        ),
                    })
                    .collect()
            })
            .collect()
    }

    /// Opens a connection for a client; the returned handle owns one sender
    /// per server shard and performs the round-robin rank dispatch of §3.2.2
    /// plus the stable shard routing within each rank.
    pub fn connect_client(&self, client_id: u64) -> crate::client::ClientConnection {
        // ordering: Relaxed — monitoring counter; connection setup itself synchronises via the channel clones below
        self.stats.connections.fetch_add(1, Ordering::Relaxed);
        crate::client::ClientConnection::new(
            client_id,
            self.senders.clone(),
            Arc::clone(&self.injector),
            Arc::clone(&self.stats),
        )
    }

    /// A snapshot of the traffic counters: the client-side cell plus the
    /// delivery counters of every shard.
    pub fn stats(&self) -> TransportStats {
        let mut snapshot = self.stats.snapshot();
        for rank_stats in &self.shard_stats {
            for cell in rank_stats {
                let shard = cell.snapshot();
                snapshot.messages_delivered += shard.messages_delivered;
                snapshot.finalized_clients += shard.finalized_clients;
            }
        }
        snapshot
    }
}

/// A scripted one-shot stall of one shard's drain path (see
/// [`crate::fault::FaultEvent::ShardStall`]).
struct ShardStallState {
    after_messages: usize,
    stall: Duration,
    drained: AtomicUsize,
    fired: AtomicBool,
}

/// The receive side of one shard of one server rank, polled by a
/// data-aggregator (shard) thread. Owns the shard's stats cell, so
/// concurrent shard workers account their traffic without sharing counters.
pub struct ServerEndpoint {
    rank: usize,
    shard: usize,
    receiver: Receiver<Message>,
    stats: Arc<StatsCell>,
    /// Scripted stall of this shard's drain path, if the fault plan names it.
    stall: Option<ShardStallState>,
}

impl ServerEndpoint {
    /// The rank this endpoint belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The ingest shard within the rank.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        match self.receiver.try_recv() {
            Ok(msg) => {
                self.account(&msg);
                self.maybe_stall(1);
                Some(msg)
            }
            Err(_) => None,
        }
    }

    /// Non-blocking batched receive: drains up to `max` queued messages into
    /// `out` (appended) under a single channel lock, with a single sender
    /// wake-up and a single traffic-counter update for the whole burst —
    /// the aggregator's steady-state drain path. Returns the number of
    /// messages moved.
    pub fn try_recv_many(&self, out: &mut Vec<Message>, max: usize) -> usize {
        let before = out.len();
        // analysis: allow(blocking, reason = "recv_many drains only already-queued messages — non-blocking by the channel contract")
        let moved = self.receiver.recv_many(out, max);
        if moved == 0 {
            return 0;
        }
        let mut delivered = 0usize;
        let mut finalized = 0usize;
        for msg in &out[before..] {
            match msg {
                Message::TimeStep { .. } => delivered += 1,
                Message::Finalize { .. } => finalized += 1,
                Message::Connect { .. } => {}
            }
        }
        self.stats
            .messages_delivered
            // ordering: Relaxed — monitoring counters; the drained messages were already handed over by the channel
            .fetch_add(delivered, Ordering::Relaxed);
        self.stats
            .finalized_clients
            // ordering: Relaxed — monitoring counters; the drained messages were already handed over by the channel
            .fetch_add(finalized, Ordering::Relaxed);
        self.maybe_stall(moved);
        moved
    }

    /// Blocking receive with a timeout; `None` on timeout or when every sender
    /// side has been dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        // analysis: allow(blocking, reason = "timed blocking receive is this method's documented contract; hot callers bound the timeout")
        match self.receiver.recv_timeout(timeout) {
            Ok(msg) => {
                self.account(&msg);
                self.maybe_stall(1);
                Some(msg)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Fires a scripted one-shot stall once this shard has drained enough
    /// messages (see [`crate::fault::FaultEvent::ShardStall`]). A no-op on
    /// un-scripted shards: one `Option` check on the drain path.
    fn maybe_stall(&self, drained_now: usize) {
        let Some(state) = &self.stall else {
            return;
        };
        // ordering: Relaxed — the counter and flag are only read/written by this shard's single drain thread; atomics are for the &self API, not cross-thread ordering
        let total = state.drained.fetch_add(drained_now, Ordering::Relaxed) + drained_now;
        // ordering: Relaxed — see above; single-threaded per endpoint by design
        if total >= state.after_messages && !state.fired.swap(true, Ordering::Relaxed) {
            // analysis: allow(blocking, reason = "scripted shard-stall fault injection; fires at most once per run, and only when a chaos plan names this shard")
            std::thread::sleep(state.stall);
        }
    }

    /// Number of messages currently queued for this shard.
    pub fn queued(&self) -> usize {
        self.receiver.len()
    }

    fn account(&self, msg: &Message) {
        match msg {
            Message::TimeStep { .. } => {
                self.stats
                    .messages_delivered
                    // ordering: Relaxed — monitoring counter trailing a channel recv that already ordered the message
                    .fetch_add(1, Ordering::Relaxed);
            }
            Message::Finalize { .. } => {
                // ordering: Relaxed — monitoring counter trailing a channel recv that already ordered the message
                self.stats.finalized_clients.fetch_add(1, Ordering::Relaxed);
            }
            Message::Connect { .. } => {}
        }
    }
}

/// Internal hook used by [`crate::client::ClientConnection`] to record a send
/// — lock-free, so concurrent clients never contend on the counters.
pub(crate) fn record_send(stats: &StatsCell, bytes: usize, delivery: Delivery) {
    // ordering: Relaxed for all four counters — independent monotonic tallies read after quiescence; contention, not ordering, is the design constraint here
    stats.messages_sent.fetch_add(1, Ordering::Relaxed);
    stats.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    match delivery {
        Delivery::Drop => {
            // ordering: Relaxed — see record_send header comment
            stats.messages_dropped.fetch_add(1, Ordering::Relaxed);
        }
        Delivery::Duplicate => {
            // ordering: Relaxed — see record_send header comment
            stats.messages_duplicated.fetch_add(1, Ordering::Relaxed);
        }
        Delivery::Deliver => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::SamplePayload;

    fn payload(step: usize) -> SamplePayload {
        SamplePayload {
            simulation_id: 1,
            step,
            time: step as f64 * 0.01,
            parameters: vec![300.0; 5],
            values: vec![0.0; 8],
        }
    }

    fn sim_payload(simulation_id: u64, step: usize) -> SamplePayload {
        SamplePayload {
            simulation_id,
            ..payload(step)
        }
    }

    #[test]
    fn round_robin_balances_ranks() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 4,
            channel_capacity: 128,
            ..FabricConfig::default()
        });
        let endpoints = fabric.server_endpoints();
        let client = fabric.connect_client(0);
        for step in 0..40 {
            client.send(payload(step)).unwrap();
        }
        let counts: Vec<usize> = endpoints.iter().map(|e| e.queued()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 40);
        for &c in &counts {
            assert_eq!(c, 10, "round-robin must balance exactly: {counts:?}");
        }
    }

    #[test]
    fn client_id_offsets_first_destination() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 3,
            channel_capacity: 8,
            ..FabricConfig::default()
        });
        let endpoints = fabric.server_endpoints();
        // Client 1 starts at rank 1, client 2 at rank 2 (client_id mod ranks).
        let c1 = fabric.connect_client(1);
        c1.send(payload(0)).unwrap();
        let c2 = fabric.connect_client(2);
        c2.send(payload(0)).unwrap();
        assert_eq!(endpoints[0].queued(), 0);
        assert_eq!(endpoints[1].queued(), 1);
        assert_eq!(endpoints[2].queued(), 1);
    }

    #[test]
    fn finalize_reaches_every_rank() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 3,
            channel_capacity: 8,
            ..FabricConfig::default()
        });
        let endpoints = fabric.server_endpoints();
        let client = fabric.connect_client(5);
        client.finalize().unwrap();
        for ep in &endpoints {
            let msg = ep.try_recv().expect("finalize delivered");
            assert!(matches!(msg, Message::Finalize { client_id: 5, .. }));
        }
        assert_eq!(fabric.stats().finalized_clients, 3);
    }

    #[test]
    fn dropped_messages_never_arrive() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 1,
            channel_capacity: 256,
            fault: FaultConfig {
                drop_probability: 1.0,
                ..FaultConfig::default()
            },
            ..FabricConfig::default()
        });
        let endpoints = fabric.server_endpoints();
        let client = fabric.connect_client(0);
        for step in 0..10 {
            client.send(payload(step)).unwrap();
        }
        assert!(endpoints[0].try_recv().is_none());
        let stats = fabric.stats();
        assert_eq!(stats.messages_sent, 10);
        assert_eq!(stats.messages_dropped, 10);
        assert_eq!(stats.messages_delivered, 0);
    }

    #[test]
    fn duplicated_messages_arrive_twice() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 1,
            channel_capacity: 256,
            fault: FaultConfig {
                duplicate_probability: 1.0,
                ..FaultConfig::default()
            },
            ..FabricConfig::default()
        });
        let endpoints = fabric.server_endpoints();
        let client = fabric.connect_client(0);
        client.send(payload(0)).unwrap();
        assert!(endpoints[0].try_recv().is_some());
        assert!(endpoints[0].try_recv().is_some());
        assert!(endpoints[0].try_recv().is_none());
    }

    #[test]
    fn stats_count_bytes() {
        let fabric = Fabric::new(FabricConfig::default());
        let client = fabric.connect_client(0);
        client.send(payload(0)).unwrap();
        let stats = fabric.stats();
        assert!(stats.bytes_sent > 0);
        assert_eq!(stats.connections, 1);
    }

    #[test]
    fn try_recv_many_drains_in_order_with_batched_accounting() {
        let fabric = Fabric::new(FabricConfig::default());
        let endpoints = fabric.server_endpoints();
        let client = fabric.connect_client(0);
        for step in 0..7 {
            client.send(payload(step)).unwrap();
        }
        client.finalize().unwrap();
        let mut out = Vec::new();
        assert_eq!(endpoints[0].try_recv_many(&mut out, 5), 5);
        assert_eq!(
            endpoints[0].try_recv_many(&mut out, 64),
            3,
            "2 steps + finalize"
        );
        assert_eq!(endpoints[0].try_recv_many(&mut out, 64), 0);
        let steps: Vec<usize> = out
            .iter()
            .filter_map(|m| match m {
                Message::TimeStep { payload, .. } => Some(payload.step),
                _ => None,
            })
            .collect();
        assert_eq!(steps, (0..7).collect::<Vec<_>>());
        let stats = fabric.stats();
        assert_eq!(stats.messages_delivered, 7);
        assert_eq!(stats.finalized_clients, 1);
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let fabric = Fabric::new(FabricConfig::default());
        let endpoints = fabric.server_endpoints();
        let start = std::time::Instant::now();
        assert!(endpoints[0]
            .recv_timeout(Duration::from_millis(20))
            .is_none());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    #[should_panic(expected = "at least one server rank")]
    fn zero_ranks_rejected() {
        let _ = Fabric::new(FabricConfig {
            num_server_ranks: 0,
            ..FabricConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "at least one ingest shard")]
    fn zero_shards_rejected() {
        let _ = Fabric::new(FabricConfig {
            shards_per_rank: 0,
            ..FabricConfig::default()
        });
    }

    #[test]
    fn stable_shard_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 8] {
            for sim in 0..64u64 {
                let shard = stable_shard(sim, shards);
                assert!(shard < shards);
                assert_eq!(shard, stable_shard(sim, shards), "stable");
            }
        }
        // One shard: everything maps to shard 0.
        assert!((0..100).all(|sim| stable_shard(sim, 1) == 0));
        // The hash actually spreads simulations across shards.
        let hit: std::collections::HashSet<usize> =
            (0..32).map(|sim| stable_shard(sim, 4)).collect();
        assert_eq!(hit.len(), 4, "all four shards are used");
    }

    #[test]
    fn sharded_fabric_preserves_per_simulation_order_within_one_shard() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 1,
            shards_per_rank: 4,
            channel_capacity: 256,
            ..FabricConfig::default()
        });
        let endpoints = fabric.rank_shard_endpoints();
        assert_eq!(endpoints.len(), 1);
        assert_eq!(endpoints[0].len(), 4);
        // Two simulations interleave their sends; each must land wholly on
        // its own stable shard, in send order.
        let c0 = fabric.connect_client(0);
        let c1 = fabric.connect_client(1);
        for step in 0..12 {
            c0.send(sim_payload(0, step)).unwrap();
            c1.send(sim_payload(1, step)).unwrap();
        }
        for sim in 0..2u64 {
            let shard = stable_shard(sim, 4);
            let ep = &endpoints[0][shard];
            let mut steps = Vec::new();
            let mut out = Vec::new();
            ep.try_recv_many(&mut out, 256);
            for msg in &out {
                if let Message::TimeStep { payload, .. } = msg {
                    if payload.simulation_id == sim {
                        steps.push(payload.step);
                    }
                }
            }
            assert_eq!(steps, (0..12).collect::<Vec<_>>(), "sim {sim}");
        }
    }

    #[test]
    fn sharded_finalize_lands_on_the_clients_shard_of_every_rank() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 2,
            shards_per_rank: 3,
            channel_capacity: 16,
            ..FabricConfig::default()
        });
        let endpoints = fabric.rank_shard_endpoints();
        let client = fabric.connect_client(7);
        client.finalize().unwrap();
        let home = stable_shard(7, 3);
        for rank_eps in &endpoints {
            for (shard, ep) in rank_eps.iter().enumerate() {
                if shard == home {
                    assert!(matches!(
                        ep.try_recv(),
                        Some(Message::Finalize { client_id: 7, .. })
                    ));
                } else {
                    assert!(ep.try_recv().is_none(), "finalize only on the home shard");
                }
            }
        }
        assert_eq!(fabric.stats().finalized_clients, 2);
    }

    #[test]
    fn sharded_stats_aggregate_across_shard_cells() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 1,
            shards_per_rank: 2,
            channel_capacity: 64,
            ..FabricConfig::default()
        });
        let endpoints = fabric.rank_shard_endpoints();
        for sim in 0..4u64 {
            let client = fabric.connect_client(sim);
            for step in 0..5 {
                client.send(sim_payload(sim, step)).unwrap();
            }
        }
        let mut out = Vec::new();
        for ep in &endpoints[0] {
            ep.try_recv_many(&mut out, 64);
        }
        let stats = fabric.stats();
        assert_eq!(stats.messages_sent, 20);
        assert_eq!(stats.messages_delivered, 20);
        assert_eq!(stats.connections, 4);
    }

    #[test]
    fn scripted_shard_stall_fires_once_after_threshold() {
        use crate::fault::FaultPlan;
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 1,
            channel_capacity: 64,
            fault: FaultConfig {
                plan: FaultPlan::none().with_shard_stall(0, 0, 3, Duration::from_millis(30)),
                ..FaultConfig::default()
            },
            ..FabricConfig::default()
        });
        let endpoints = fabric.server_endpoints();
        let client = fabric.connect_client(0);
        for step in 0..6 {
            client.send(payload(step)).unwrap();
        }
        // First two drains stay under the threshold: fast.
        let fast = std::time::Instant::now();
        assert!(endpoints[0].try_recv().is_some());
        assert!(endpoints[0].try_recv().is_some());
        assert!(fast.elapsed() < Duration::from_millis(25));
        // The third drained message crosses the threshold and stalls once.
        let slow = std::time::Instant::now();
        assert!(endpoints[0].try_recv().is_some());
        assert!(slow.elapsed() >= Duration::from_millis(25), "stall fires");
        // Subsequent drains are fast again — the stall is one-shot.
        let after = std::time::Instant::now();
        let mut out = Vec::new();
        assert_eq!(endpoints[0].try_recv_many(&mut out, 16), 3);
        assert!(after.elapsed() < Duration::from_millis(25));
    }

    #[test]
    #[should_panic(expected = "rank_shard_endpoints")]
    fn server_endpoints_rejects_a_sharded_fabric() {
        let fabric = Fabric::new(FabricConfig {
            shards_per_rank: 2,
            ..FabricConfig::default()
        });
        let _ = fabric.server_endpoints();
    }
}
