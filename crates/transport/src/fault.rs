//! Fault injection for the transport layer.
//!
//! The paper's framework is fault-tolerant: clients can crash and be restarted,
//! and the server discards messages it has already received. To exercise those
//! paths without a real cluster, the fabric can be configured to drop,
//! duplicate or delay messages with given probabilities, and — for
//! reproducible chaos scenarios — to follow a scripted [`FaultPlan`]:
//! "client 3 crashes after emitting step 7 of attempt 1", "the server fails
//! after batch N", "shard (0, 1) stalls for 50 ms". The probabilistic knobs
//! model a lossy interconnect; the plan models the discrete failures §3.1's
//! recovery machinery (launcher restarts, checkpoint-resume) must survive.
//!
//! Every probabilistic decision is a pure function of
//! `(seed, client_id, sequence)` — no shared RNG state — so concurrent
//! senders never serialize on the injector and the same seed yields the same
//! fault schedule no matter how threads interleave.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One scripted failure in a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Attempt `attempt` of client `client_id` crashes (returns an error)
    /// after emitting `after_steps` time steps.
    ClientCrash {
        /// The client that fails.
        client_id: u64,
        /// The attempt (0-based) the failure applies to; later attempts of
        /// the same client run clean unless scripted separately.
        attempt: usize,
        /// Number of time steps emitted before the crash.
        after_steps: usize,
    },
    /// Attempt `attempt` of client `client_id` stops making progress after
    /// emitting `after_steps` time steps — it neither finishes nor errors,
    /// which only a watchdog deadline can detect.
    ClientHang {
        /// The client that hangs.
        client_id: u64,
        /// The attempt (0-based) the hang applies to.
        attempt: usize,
        /// Number of time steps emitted before the hang.
        after_steps: usize,
    },
    /// The training server fails after completing `after_batches` gradient
    /// batches; recovery restarts it from the latest checkpoint.
    ServerCrash {
        /// Number of data batches trained before the crash.
        after_batches: usize,
    },
    /// The ingest channel of shard `shard` of rank `rank` stalls (the
    /// receiving worker sleeps) for `stall` once `after_messages` messages
    /// have been drained from it.
    ShardStall {
        /// The server rank whose shard stalls.
        rank: usize,
        /// The ingest shard within the rank.
        shard: usize,
        /// Messages drained before the stall fires.
        after_messages: usize,
        /// How long the shard worker stalls.
        stall: Duration,
    },
}

/// What a scripted client fault does once it triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientFaultKind {
    /// The client errors out (a detectable failure).
    Crash,
    /// The client silently stops (only heartbeat staleness reveals it).
    Hang,
}

/// The scripted fault a given `(client, attempt)` pair must act out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedClientFault {
    /// Time steps to emit before failing.
    pub after_steps: usize,
    /// Whether the client crashes loudly or hangs silently.
    pub kind: ClientFaultKind,
}

/// A deterministic, scripted fault schedule.
///
/// The plan is data, not state: querying it never mutates anything, so the
/// same plan replayed against the same experiment produces the same failure
/// trace and therefore the same recovery trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scripted failures, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no scripted faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an event (builder style).
    #[must_use]
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Convenience: client `client_id` crashes on attempt `attempt` after
    /// `after_steps` steps.
    #[must_use]
    pub fn with_client_crash(self, client_id: u64, attempt: usize, after_steps: usize) -> Self {
        self.with(FaultEvent::ClientCrash {
            client_id,
            attempt,
            after_steps,
        })
    }

    /// Convenience: client `client_id` hangs on attempt `attempt` after
    /// `after_steps` steps.
    #[must_use]
    pub fn with_client_hang(self, client_id: u64, attempt: usize, after_steps: usize) -> Self {
        self.with(FaultEvent::ClientHang {
            client_id,
            attempt,
            after_steps,
        })
    }

    /// Convenience: the server crashes after `after_batches` batches.
    #[must_use]
    pub fn with_server_crash(self, after_batches: usize) -> Self {
        self.with(FaultEvent::ServerCrash { after_batches })
    }

    /// Convenience: shard `(rank, shard)` stalls for `stall` after draining
    /// `after_messages` messages.
    #[must_use]
    pub fn with_shard_stall(
        self,
        rank: usize,
        shard: usize,
        after_messages: usize,
        stall: Duration,
    ) -> Self {
        self.with(FaultEvent::ShardStall {
            rank,
            shard,
            after_messages,
            stall,
        })
    }

    /// The scripted fault (if any) for attempt `attempt` of `client_id`.
    /// The first matching event wins.
    pub fn client_fault(&self, client_id: u64, attempt: usize) -> Option<ScriptedClientFault> {
        self.events.iter().find_map(|event| match *event {
            FaultEvent::ClientCrash {
                client_id: id,
                attempt: a,
                after_steps,
            } if id == client_id && a == attempt => Some(ScriptedClientFault {
                after_steps,
                kind: ClientFaultKind::Crash,
            }),
            FaultEvent::ClientHang {
                client_id: id,
                attempt: a,
                after_steps,
            } if id == client_id && a == attempt => Some(ScriptedClientFault {
                after_steps,
                kind: ClientFaultKind::Hang,
            }),
            _ => None,
        })
    }

    /// The batch count after which the server is scripted to crash, if any.
    /// The earliest scripted crash wins.
    pub fn server_crash_after(&self) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|event| match *event {
                FaultEvent::ServerCrash { after_batches } => Some(after_batches),
                _ => None,
            })
            .min()
    }

    /// The stall (messages-before, duration) scripted for shard
    /// `(rank, shard)`, if any.
    pub fn shard_stall(&self, rank: usize, shard: usize) -> Option<(usize, Duration)> {
        self.events.iter().find_map(|event| match *event {
            FaultEvent::ShardStall {
                rank: r,
                shard: s,
                after_messages,
                stall,
            } if r == rank && s == shard => Some((after_messages, stall)),
            _ => None,
        })
    }

    /// Generates a randomized-but-deterministic chaos schedule: each client
    /// independently (probability ~1/3 each) runs clean, crashes once, or
    /// hangs once, at a scripted step below `steps_per_client`. Faults are
    /// scripted on attempt 0 only, so a retried client succeeds — the
    /// schedule exercises detection and retry, not retry exhaustion. The
    /// same `seed` always yields the same schedule.
    pub fn seeded_chaos(seed: u64, num_clients: u64, steps_per_client: usize) -> Self {
        let mut events = Vec::new();
        for client_id in 0..num_clients {
            let h = mix64(mix64(seed ^ CHAOS_SALT) ^ client_id);
            let step = if steps_per_client > 1 {
                (mix64(h) % steps_per_client as u64) as usize
            } else {
                0
            };
            match h % 3 {
                0 => {}
                1 => events.push(FaultEvent::ClientCrash {
                    client_id,
                    attempt: 0,
                    after_steps: step,
                }),
                _ => events.push(FaultEvent::ClientHang {
                    client_id,
                    attempt: 0,
                    after_steps: step,
                }),
            }
        }
        Self { events }
    }
}

/// Probabilities, delays and scripted faults applied to transport traffic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that a message is silently dropped.
    #[serde(default)]
    pub drop_probability: f64,
    /// Probability that a message is delivered twice (emulating a client
    /// retransmitting after an acknowledgement was lost).
    #[serde(default)]
    pub duplicate_probability: f64,
    /// Fixed latency added to every *delivered* message (emulating the
    /// interconnect). Dropped messages never reach the wire, so no latency
    /// is charged for them.
    #[serde(default)]
    pub latency: Duration,
    /// Seed of the injector's per-message fault decisions.
    #[serde(default)]
    pub seed: u64,
    /// Scripted failures (client crashes/hangs, server crash, shard stalls).
    #[serde(default)]
    pub plan: FaultPlan,
}

impl FaultConfig {
    /// A configuration that never perturbs messages.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no fault of any kind is configured.
    pub fn is_noop(&self) -> bool {
        self.drop_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.latency.is_zero()
            && self.plan.is_empty()
    }
}

/// splitmix64 finalizer: the project's stable stateless hash (same constants
/// as [`crate::fabric::stable_shard`]).
#[inline]
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain separator so chaos-schedule draws never collide with per-message
/// delivery draws under the same seed.
const CHAOS_SALT: u64 = 0xC4A0_5C4A_05C4_A05C;

/// Maps a hash to a uniform float in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The per-fabric fault decision engine.
///
/// Stateless by design: the fate of a message is a pure hash of
/// `(config.seed, client_id, sequence)` ("fault stream v2" in
/// `analysis/seed_policy.toml`), so concurrent senders never contend and a
/// replayed message — same client, same sequence — receives the same verdict.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
}

/// What should happen to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver the message once.
    Deliver,
    /// Deliver the message twice.
    Duplicate,
    /// Drop the message.
    Drop,
}

impl FaultInjector {
    /// Creates an injector.
    pub fn new(config: FaultConfig) -> Self {
        Self { config }
    }

    /// The configuration of this injector.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decides the fate of message `sequence` of client `client_id` and
    /// charges the configured latency — but only to messages that actually
    /// travel (delivered or duplicated); a dropped message never reaches the
    /// wire, so it costs nothing.
    pub fn decide(&self, client_id: u64, sequence: u64) -> Delivery {
        let delivery = self.classify(client_id, sequence);
        if delivery != Delivery::Drop && !self.config.latency.is_zero() {
            std::thread::sleep(self.config.latency);
        }
        delivery
    }

    /// The pure decision, without the latency side effect.
    pub fn classify(&self, client_id: u64, sequence: u64) -> Delivery {
        if self.config.drop_probability == 0.0 && self.config.duplicate_probability == 0.0 {
            return Delivery::Deliver;
        }
        let roll = unit_f64(mix64(mix64(mix64(self.config.seed) ^ client_id) ^ sequence));
        if roll < self.config.drop_probability {
            Delivery::Drop
        } else if roll < self.config.drop_probability + self.config.duplicate_probability {
            Delivery::Duplicate
        } else {
            Delivery::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_config_always_delivers() {
        let injector = FaultInjector::new(FaultConfig::none());
        assert!(injector.config().is_noop());
        for seq in 0..100 {
            assert_eq!(injector.decide(0, seq), Delivery::Deliver);
        }
    }

    #[test]
    fn drop_probability_one_always_drops() {
        let injector = FaultInjector::new(FaultConfig {
            drop_probability: 1.0,
            ..FaultConfig::default()
        });
        for seq in 0..50 {
            assert_eq!(injector.decide(3, seq), Delivery::Drop);
        }
    }

    #[test]
    fn probabilities_roughly_respected() {
        let injector = FaultInjector::new(FaultConfig {
            drop_probability: 0.3,
            duplicate_probability: 0.2,
            seed: 7,
            ..FaultConfig::default()
        });
        let mut drops = 0;
        let mut dups = 0;
        let n = 5_000;
        for seq in 0..n {
            match injector.decide(0, seq) {
                Delivery::Drop => drops += 1,
                Delivery::Duplicate => dups += 1,
                Delivery::Deliver => {}
            }
        }
        let drop_rate = drops as f64 / n as f64;
        let dup_rate = dups as f64 / n as f64;
        assert!((drop_rate - 0.3).abs() < 0.05, "drop rate {drop_rate}");
        assert!((dup_rate - 0.2).abs() < 0.05, "duplicate rate {dup_rate}");
    }

    #[test]
    fn decisions_are_a_pure_function_of_seed_client_and_sequence() {
        let make = |seed| {
            FaultInjector::new(FaultConfig {
                drop_probability: 0.5,
                duplicate_probability: 0.2,
                seed,
                ..FaultConfig::default()
            })
        };
        let a = make(3);
        let b = make(3);
        // Same triple, any call order, any repetition: same verdict.
        for seq in (0..50).rev() {
            assert_eq!(a.classify(1, seq), b.classify(1, seq));
            assert_eq!(a.classify(1, seq), a.classify(1, seq));
        }
        // Different clients see genuinely different streams.
        let stream = |client: u64| (0..64).map(|s| a.classify(client, s)).collect::<Vec<_>>();
        assert_ne!(stream(0), stream(1));
        // Different seeds see different streams.
        let c = make(4);
        assert_ne!(
            (0..64).map(|s| a.classify(0, s)).collect::<Vec<_>>(),
            (0..64).map(|s| c.classify(0, s)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn latency_is_not_charged_to_dropped_messages() {
        let injector = FaultInjector::new(FaultConfig {
            drop_probability: 1.0,
            latency: std::time::Duration::from_millis(10),
            ..FaultConfig::default()
        });
        let start = std::time::Instant::now();
        for seq in 0..50 {
            assert_eq!(injector.decide(0, seq), Delivery::Drop);
        }
        // 50 drops at 10 ms each would take 500 ms if latency were (still)
        // charged to drops; un-charged they are near-instant.
        assert!(
            start.elapsed() < std::time::Duration::from_millis(100),
            "dropped messages must not pay the interconnect latency"
        );
    }

    #[test]
    fn latency_is_charged_to_delivered_messages() {
        let injector = FaultInjector::new(FaultConfig {
            latency: std::time::Duration::from_millis(5),
            ..FaultConfig::default()
        });
        let start = std::time::Instant::now();
        assert_eq!(injector.decide(0, 0), Delivery::Deliver);
        assert!(start.elapsed() >= std::time::Duration::from_millis(4));
    }

    #[test]
    fn plan_queries_match_scripted_events() {
        let plan = FaultPlan::none()
            .with_client_crash(3, 1, 7)
            .with_client_hang(4, 0, 2)
            .with_server_crash(40)
            .with_server_crash(25)
            .with_shard_stall(0, 1, 10, Duration::from_millis(50));
        assert_eq!(
            plan.client_fault(3, 1),
            Some(ScriptedClientFault {
                after_steps: 7,
                kind: ClientFaultKind::Crash
            })
        );
        assert_eq!(plan.client_fault(3, 0), None, "other attempts run clean");
        assert_eq!(
            plan.client_fault(5, 0),
            None,
            "unscripted clients run clean"
        );
        assert_eq!(
            plan.client_fault(4, 0),
            Some(ScriptedClientFault {
                after_steps: 2,
                kind: ClientFaultKind::Hang
            })
        );
        assert_eq!(plan.server_crash_after(), Some(25), "earliest crash wins");
        assert_eq!(
            plan.shard_stall(0, 1),
            Some((10, Duration::from_millis(50)))
        );
        assert_eq!(plan.shard_stall(1, 1), None);
        assert!(FaultPlan::none().is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    fn plan_survives_serde_roundtrip_inside_the_config() {
        let config = FaultConfig {
            drop_probability: 0.1,
            seed: 9,
            plan: FaultPlan::none()
                .with_client_crash(1, 0, 3)
                .with_server_crash(12),
            ..FaultConfig::default()
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        // Configs serialized before plans existed still deserialize.
        let legacy: FaultConfig =
            serde_json::from_str(r#"{"drop_probability":0.5,"duplicate_probability":0.0,"latency":{"secs":0,"nanos":0},"seed":1}"#)
                .unwrap();
        assert_eq!(legacy.drop_probability, 0.5);
        assert!(legacy.plan.is_empty());
    }

    #[test]
    fn seeded_chaos_is_deterministic_and_bounded() {
        let a = FaultPlan::seeded_chaos(11, 8, 10);
        let b = FaultPlan::seeded_chaos(11, 8, 10);
        assert_eq!(a, b, "same seed, same schedule");
        let c = FaultPlan::seeded_chaos(12, 8, 10);
        assert_ne!(a, c, "different seed, different schedule");
        for event in &a.events {
            match *event {
                FaultEvent::ClientCrash {
                    client_id,
                    attempt,
                    after_steps,
                }
                | FaultEvent::ClientHang {
                    client_id,
                    attempt,
                    after_steps,
                } => {
                    assert!(client_id < 8);
                    assert_eq!(attempt, 0, "chaos faults script attempt 0 only");
                    assert!(after_steps < 10);
                }
                _ => panic!("seeded chaos scripts only client faults"),
            }
        }
        // Over a range of seeds, all three outcomes (clean/crash/hang) occur.
        let mut crashes = 0;
        let mut hangs = 0;
        let mut clean = 0;
        for seed in 0..32 {
            let plan = FaultPlan::seeded_chaos(seed, 4, 10);
            let faulted = plan.events.len();
            clean += 4 - faulted;
            crashes += plan
                .events
                .iter()
                .filter(|e| matches!(e, FaultEvent::ClientCrash { .. }))
                .count();
            hangs += plan
                .events
                .iter()
                .filter(|e| matches!(e, FaultEvent::ClientHang { .. }))
                .count();
        }
        assert!(crashes > 0 && hangs > 0 && clean > 0);
    }
}
