//! Fault injection for the transport layer.
//!
//! The paper's framework is fault-tolerant: clients can crash and be restarted,
//! and the server discards messages it has already received. To exercise those
//! paths without a real cluster, the fabric can be configured to drop,
//! duplicate or delay messages with given probabilities.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Probabilities and delays applied to every sent message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that a message is silently dropped.
    pub drop_probability: f64,
    /// Probability that a message is delivered twice (emulating a client
    /// retransmitting after an acknowledgement was lost).
    pub duplicate_probability: f64,
    /// Fixed latency added to every delivery (emulating the interconnect).
    pub latency: Duration,
    /// Seed of the injector's random decisions.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            latency: Duration::ZERO,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// A configuration that never perturbs messages.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no fault of any kind is configured.
    pub fn is_noop(&self) -> bool {
        self.drop_probability == 0.0 && self.duplicate_probability == 0.0 && self.latency.is_zero()
    }
}

/// The per-fabric fault decision engine.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: parking_lot::Mutex<ChaCha8Rng>,
}

/// What should happen to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver the message once.
    Deliver,
    /// Deliver the message twice.
    Duplicate,
    /// Drop the message.
    Drop,
}

impl FaultInjector {
    /// Creates an injector.
    pub fn new(config: FaultConfig) -> Self {
        Self {
            config,
            rng: parking_lot::Mutex::new(ChaCha8Rng::seed_from_u64(config.seed)),
        }
    }

    /// The configuration of this injector.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decides the fate of one message and applies the configured latency.
    pub fn decide(&self) -> Delivery {
        if !self.config.latency.is_zero() {
            std::thread::sleep(self.config.latency);
        }
        if self.config.drop_probability == 0.0 && self.config.duplicate_probability == 0.0 {
            return Delivery::Deliver;
        }
        let mut rng = self.rng.lock();
        let roll: f64 = rng.gen();
        if roll < self.config.drop_probability {
            Delivery::Drop
        } else if roll < self.config.drop_probability + self.config.duplicate_probability {
            Delivery::Duplicate
        } else {
            Delivery::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_config_always_delivers() {
        let injector = FaultInjector::new(FaultConfig::none());
        assert!(injector.config().is_noop());
        for _ in 0..100 {
            assert_eq!(injector.decide(), Delivery::Deliver);
        }
    }

    #[test]
    fn drop_probability_one_always_drops() {
        let injector = FaultInjector::new(FaultConfig {
            drop_probability: 1.0,
            ..FaultConfig::default()
        });
        for _ in 0..50 {
            assert_eq!(injector.decide(), Delivery::Drop);
        }
    }

    #[test]
    fn probabilities_roughly_respected() {
        let injector = FaultInjector::new(FaultConfig {
            drop_probability: 0.3,
            duplicate_probability: 0.2,
            seed: 7,
            ..FaultConfig::default()
        });
        let mut drops = 0;
        let mut dups = 0;
        let n = 5_000;
        for _ in 0..n {
            match injector.decide() {
                Delivery::Drop => drops += 1,
                Delivery::Duplicate => dups += 1,
                Delivery::Deliver => {}
            }
        }
        let drop_rate = drops as f64 / n as f64;
        let dup_rate = dups as f64 / n as f64;
        assert!((drop_rate - 0.3).abs() < 0.05, "drop rate {drop_rate}");
        assert!((dup_rate - 0.2).abs() < 0.05, "duplicate rate {dup_rate}");
    }

    #[test]
    fn same_seed_same_decisions() {
        let make = || {
            FaultInjector::new(FaultConfig {
                drop_probability: 0.5,
                seed: 3,
                ..FaultConfig::default()
            })
        };
        let a = make();
        let b = make();
        for _ in 0..50 {
            assert_eq!(a.decide(), b.decide());
        }
    }
}
