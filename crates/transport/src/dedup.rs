//! Per-client message log used to discard replayed messages.
//!
//! §3.1: *"The server maintains a log of received messages per client, so in
//! case of client restart, already received messages are discarded."* Clients
//! number their time-step messages with a per-client sequence number; the log
//! remembers which sequence numbers have been seen.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Per-client record of received sequence numbers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ClientLog {
    /// All sequence numbers below this value have been received.
    contiguous_until: u64,
    /// Received sequence numbers at or above `contiguous_until`.
    ahead: BTreeSet<u64>,
    /// Whether the client sent its finalize message.
    finalized: bool,
    /// Whether the client was restored from a checkpoint as fully completed;
    /// every message it replays is a duplicate by definition.
    completed: bool,
}

impl ClientLog {
    fn observe(&mut self, sequence: u64) -> bool {
        if self.completed || sequence < self.contiguous_until || self.ahead.contains(&sequence) {
            return false; // duplicate
        }
        if sequence == self.contiguous_until {
            // Fast path — in-order arrival, the steady state of a healthy
            // client: advance the frontier directly without touching the
            // `ahead` set, keeping the ingestion path allocation-free.
            self.contiguous_until += 1;
        } else {
            self.ahead.insert(sequence);
        }
        // Advance the contiguous frontier over any previously ahead arrivals.
        while self.ahead.remove(&self.contiguous_until) {
            self.contiguous_until += 1;
        }
        true
    }

    fn received_count(&self) -> u64 {
        self.contiguous_until + self.ahead.len() as u64
    }
}

/// Server-side log of received messages, one record per client.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MessageLog {
    clients: HashMap<u64, ClientLog>,
    duplicates_discarded: u64,
}

impl MessageLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a time-step message; returns `true` when the message is new and
    /// `false` when it is a replay that must be discarded.
    pub fn observe(&mut self, client_id: u64, sequence: u64) -> bool {
        let fresh = self.clients.entry(client_id).or_default().observe(sequence);
        if !fresh {
            self.duplicates_discarded += 1;
        }
        fresh
    }

    /// Records that a client finalized.
    pub fn mark_finalized(&mut self, client_id: u64) {
        self.clients.entry(client_id).or_default().finalized = true;
    }

    /// Seeds the log with a client known (from a checkpoint) to have fully
    /// completed before a server restart: every sequence number is treated as
    /// already received and the client as finalized, so any replayed traffic
    /// from a rerun of that simulation is discarded wholesale. §3.1's resume
    /// contract — completed simulations must never be trained twice.
    pub fn mark_completed(&mut self, client_id: u64) {
        let log = self.clients.entry(client_id).or_default();
        log.completed = true;
        log.finalized = true;
    }

    /// True when the client has sent its finalize message.
    pub fn is_finalized(&self, client_id: u64) -> bool {
        self.clients
            .get(&client_id)
            .map(|c| c.finalized)
            .unwrap_or(false)
    }

    /// Number of distinct messages received from a client.
    pub fn received_from(&self, client_id: u64) -> u64 {
        self.clients
            .get(&client_id)
            .map(|c| c.received_count())
            .unwrap_or(0)
    }

    /// Number of clients that appear in the log.
    pub fn known_clients(&self) -> usize {
        self.clients.len()
    }

    /// Total number of replayed messages discarded so far.
    pub fn duplicates_discarded(&self) -> u64 {
        self.duplicates_discarded
    }

    /// Number of clients that have finalized.
    pub fn finalized_clients(&self) -> usize {
        self.clients.values().filter(|c| c.finalized).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_messages_are_accepted() {
        let mut log = MessageLog::new();
        assert!(log.observe(1, 0));
        assert!(log.observe(1, 1));
        assert!(log.observe(2, 0));
        assert_eq!(log.received_from(1), 2);
        assert_eq!(log.received_from(2), 1);
        assert_eq!(log.known_clients(), 2);
        assert_eq!(log.duplicates_discarded(), 0);
    }

    #[test]
    fn replays_are_discarded() {
        let mut log = MessageLog::new();
        for seq in 0..10 {
            assert!(log.observe(7, seq));
        }
        // Client restarts and replays from the beginning.
        for seq in 0..10 {
            assert!(!log.observe(7, seq), "sequence {seq} should be a duplicate");
        }
        assert!(log.observe(7, 10), "new data after the replay is accepted");
        assert_eq!(log.duplicates_discarded(), 10);
        assert_eq!(log.received_from(7), 11);
    }

    #[test]
    fn out_of_order_arrival_is_handled() {
        let mut log = MessageLog::new();
        assert!(log.observe(1, 2));
        assert!(log.observe(1, 0));
        assert!(log.observe(1, 1));
        assert!(!log.observe(1, 2));
        assert_eq!(log.received_from(1), 3);
    }

    #[test]
    fn finalize_tracking() {
        let mut log = MessageLog::new();
        log.observe(1, 0);
        log.observe(2, 0);
        assert!(!log.is_finalized(1));
        log.mark_finalized(1);
        assert!(log.is_finalized(1));
        assert!(!log.is_finalized(2));
        assert_eq!(log.finalized_clients(), 1);
    }

    #[test]
    fn completed_clients_discard_all_replayed_traffic() {
        let mut log = MessageLog::new();
        log.mark_completed(4);
        assert!(log.is_finalized(4));
        for seq in 0..20 {
            assert!(!log.observe(4, seq), "sequence {seq} must be discarded");
        }
        assert_eq!(log.duplicates_discarded(), 20);
        // Other clients are unaffected.
        assert!(log.observe(5, 0));
    }

    #[test]
    fn unknown_client_reports_zero() {
        let log = MessageLog::new();
        assert_eq!(log.received_from(99), 0);
        assert!(!log.is_finalized(99));
    }
}
