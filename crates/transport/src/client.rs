//! The client-side instrumentation API.
//!
//! The paper exposes a minimalist API for C, Fortran and Python to instrument
//! the simulation code: one call to connect to the server
//! (`init_communication`), one `send` per computed time step, and one
//! `finalize_communication` to signal that no more data will be sent. This
//! module mirrors those three calls; the round-robin dispatch across server
//! ranks and the client-id-dependent starting rank of §3.2.2 happen inside
//! [`ClientConnection::send`].

use crate::fabric::{record_send, stable_shard, Fabric};
use crate::fault::{Delivery, FaultInjector};
use crate::message::{Message, SamplePayload};
use crate::stats::StatsCell;
use crossbeam::channel::Sender;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Error returned when the server side of a connection has gone away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError;

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the server endpoints have been dropped")
    }
}

impl std::error::Error for SendError {}

/// An open connection from one client to every rank of the training server.
///
/// Ranks are addressed round-robin (§3.2.2); within a rank, time-step
/// messages go to the ingest shard selected by the stable hash of their
/// simulation id ([`stable_shard`]), so per-simulation arrival order is
/// preserved on that shard's channel.
pub struct ClientConnection {
    client_id: u64,
    /// Send sides, indexed `[rank][shard]`.
    senders: Vec<Vec<Sender<Message>>>,
    /// Index of the rank that receives the next time step.
    next_rank: AtomicUsize,
    /// Per-client monotonically increasing sequence number.
    next_sequence: AtomicU64,
    injector: Arc<FaultInjector>,
    stats: Arc<StatsCell>,
}

impl ClientConnection {
    pub(crate) fn new(
        client_id: u64,
        senders: Vec<Vec<Sender<Message>>>,
        injector: Arc<FaultInjector>,
        stats: Arc<StatsCell>,
    ) -> Self {
        // "The destination of the first time step is chosen according to the
        // client id to limit having all clients sending the same time step to
        // the same GPU." (§3.2.2)
        let start = (client_id as usize) % senders.len();
        Self {
            client_id,
            senders,
            next_rank: AtomicUsize::new(start),
            next_sequence: AtomicU64::new(0),
            injector,
            stats,
        }
    }

    /// Ingest shards per rank on this connection.
    fn shards_per_rank(&self) -> usize {
        self.senders[0].len()
    }

    /// The identifier of this client.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Number of server ranks this client is connected to.
    pub fn num_server_ranks(&self) -> usize {
        self.senders.len()
    }

    /// Number of time-step messages sent so far (including dropped ones).
    pub fn sent_messages(&self) -> u64 {
        // ordering: Relaxed — monitoring read of a monotonic counter; no other data hangs off it
        self.next_sequence.load(Ordering::Relaxed)
    }

    /// Restores the sequence counter after a client restart so replayed steps
    /// keep their original sequence numbers (the server dedups them).
    pub fn resume_from_sequence(&self, sequence: u64) {
        // ordering: Relaxed — restart-time store before any sender thread runs; the channel handoff orders it
        self.next_sequence.store(sequence, Ordering::Relaxed);
    }

    /// Streams one computed time step to the next server rank (round-robin),
    /// onto the ingest shard its simulation id hashes to. Blocks when the
    /// destination shard's channel is full (backpressure), just like the
    /// paper's clients stall when the server cannot keep up.
    pub fn send(&self, payload: SamplePayload) -> Result<(), SendError> {
        // ordering: Relaxed — the RMW itself hands out unique values; the sequence travels inside the message, so the channel orders it
        let sequence = self.next_sequence.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — round-robin cursor; only uniqueness matters, not ordering against other memory
        let rank = self.next_rank.fetch_add(1, Ordering::Relaxed) % self.senders.len();
        let shard = stable_shard(payload.simulation_id, self.shards_per_rank());
        let message = Message::TimeStep {
            client_id: self.client_id,
            sequence,
            payload,
        };
        let bytes = message.wire_bytes();
        let delivery = self.injector.decide(self.client_id, sequence);
        record_send(&self.stats, bytes, delivery);
        let sender = &self.senders[rank][shard];
        match delivery {
            Delivery::Drop => Ok(()),
            Delivery::Deliver => sender.send(message).map_err(|_| SendError),
            Delivery::Duplicate => {
                sender.send(message.clone()).map_err(|_| SendError)?;
                sender.send(message).map_err(|_| SendError)
            }
        }
    }

    /// Signals every server rank that this client will send no more data. The
    /// finalize lands on the client's home shard of each rank (the shard its
    /// own simulation id hashes to), so it queues behind the client's last
    /// time-step messages there.
    pub fn finalize(&self) -> Result<(), SendError> {
        let sent = self.sent_messages();
        let shard = stable_shard(self.client_id, self.shards_per_rank());
        for rank_senders in &self.senders {
            rank_senders[shard]
                .send(Message::Finalize {
                    client_id: self.client_id,
                    sent_messages: sent,
                })
                .map_err(|_| SendError)?;
        }
        Ok(())
    }
}

/// The paper's three-call API, as free functions over the fabric.
pub struct ClientApi;

impl ClientApi {
    /// `init_communication`: connects the client to every server rank.
    pub fn init_communication(fabric: &Fabric, client_id: u64) -> ClientConnection {
        fabric.connect_client(client_id)
    }

    /// `send`: streams one time step.
    pub fn send(connection: &ClientConnection, payload: SamplePayload) -> Result<(), SendError> {
        connection.send(payload)
    }

    /// `finalize_communication`: signals completion and drops the connection.
    pub fn finalize_communication(connection: ClientConnection) -> Result<(), SendError> {
        connection.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use crate::message::Message;

    fn payload(step: usize) -> SamplePayload {
        SamplePayload {
            simulation_id: 3,
            step,
            time: 0.01 * step as f64,
            parameters: vec![1.0; 5],
            values: vec![0.5; 4],
        }
    }

    #[test]
    fn sequence_numbers_increase_monotonically() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 2,
            channel_capacity: 64,
            ..FabricConfig::default()
        });
        let endpoints = fabric.server_endpoints();
        let client = ClientApi::init_communication(&fabric, 0);
        for step in 0..10 {
            ClientApi::send(&client, payload(step)).unwrap();
        }
        assert_eq!(client.sent_messages(), 10);
        let mut sequences = Vec::new();
        for ep in &endpoints {
            while let Some(Message::TimeStep { sequence, .. }) = ep.try_recv() {
                sequences.push(sequence);
            }
        }
        sequences.sort_unstable();
        assert_eq!(sequences, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn resume_from_sequence_replays_old_numbers() {
        let fabric = Fabric::new(FabricConfig::default());
        let client = fabric.connect_client(1);
        for step in 0..5 {
            client.send(payload(step)).unwrap();
        }
        // Simulated restart from the last checkpoint at step 2.
        client.resume_from_sequence(2);
        client.send(payload(2)).unwrap();
        assert_eq!(client.sent_messages(), 3);
    }

    #[test]
    fn finalize_consumes_connection_through_api() {
        let fabric = Fabric::new(FabricConfig {
            num_server_ranks: 2,
            channel_capacity: 8,
            ..FabricConfig::default()
        });
        let endpoints = fabric.server_endpoints();
        let client = ClientApi::init_communication(&fabric, 9);
        ClientApi::send(&client, payload(0)).unwrap();
        ClientApi::finalize_communication(client).unwrap();
        let mut finalizes = 0;
        for ep in &endpoints {
            while let Some(msg) = ep.try_recv() {
                if matches!(msg, Message::Finalize { client_id: 9, .. }) {
                    finalizes += 1;
                }
            }
        }
        assert_eq!(finalizes, 2);
    }

    #[test]
    fn send_after_endpoints_dropped_fails() {
        let fabric = Fabric::new(FabricConfig::default());
        let client = fabric.connect_client(0);
        let endpoints = fabric.server_endpoints();
        drop(endpoints);
        drop(fabric);
        assert_eq!(client.send(payload(0)), Err(SendError));
        assert!(client.finalize().is_err());
    }
}
