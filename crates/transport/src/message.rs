//! Messages exchanged between clients and the training server.
//!
//! The wire format mirrors what the paper's ZMQ layer carries: a connection
//! handshake, one message per computed time step (the payload is the gathered,
//! `f32`-converted field plus its input parameters), and a finalisation message
//! signalling that a client will send no more data.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// The data carried by one time-step message: one training sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplePayload {
    /// Ensemble-member identifier (which simulation produced this step).
    pub simulation_id: u64,
    /// Time-step index inside the simulation.
    pub step: usize,
    /// Physical time of the step.
    pub time: f64,
    /// The sampled input parameters `X` of the simulation.
    pub parameters: Vec<f32>,
    /// The gathered field values (row-major, `f32`).
    pub values: Vec<f32>,
}

impl SamplePayload {
    /// Unique key of the sample inside an experiment.
    pub fn key(&self) -> (u64, usize) {
        (self.simulation_id, self.step)
    }

    /// Payload size in bytes (as transported).
    pub fn payload_bytes(&self) -> usize {
        8 + 8 + 8 + 4 * (self.parameters.len() + self.values.len())
    }

    /// The surrogate input vector `(X, t)`.
    pub fn input_vector(&self) -> Vec<f32> {
        let mut v = self.parameters.clone();
        v.push(self.time as f32);
        v
    }
}

/// A message on a client→server connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// A client announces itself to a server rank.
    Connect {
        /// Identifier of the connecting client.
        client_id: u64,
    },
    /// One computed time step.
    TimeStep {
        /// Identifier of the sending client.
        client_id: u64,
        /// Per-client monotonically increasing sequence number, used by the
        /// server-side message log to discard replays after a client restart.
        sequence: u64,
        /// The sample itself.
        payload: SamplePayload,
    },
    /// The client will send no more data.
    Finalize {
        /// Identifier of the finalizing client.
        client_id: u64,
        /// Number of time-step messages the client sent in total (per rank
        /// accounting is derived by the server).
        sent_messages: u64,
    },
}

impl Message {
    /// The client this message originates from.
    pub fn client_id(&self) -> u64 {
        match self {
            Message::Connect { client_id }
            | Message::TimeStep { client_id, .. }
            | Message::Finalize { client_id, .. } => *client_id,
        }
    }

    /// Exact transported size in bytes: the length of the frame
    /// [`Message::encode`] produces (the roundtrip tests pin the equality), so
    /// transport volume accounting matches the wire format byte for byte.
    // analysis: hot_path
    pub fn wire_bytes(&self) -> usize {
        match self {
            // tag + client_id.
            Message::Connect { .. } => 1 + 8,
            // tag + client_id + sent_messages.
            Message::Finalize { .. } => 1 + 8 + 8,
            // tag + client_id + sequence + simulation_id + step + time
            // + two u32 length prefixes + the f32 parameters and values.
            Message::TimeStep { payload, .. } => {
                1 + 8
                    + 8
                    + 8
                    + 8
                    + 8
                    + 4
                    + 4 * payload.parameters.len()
                    + 4
                    + 4 * payload.values.len()
            }
        }
    }

    /// Exact transported size of a burst frame carrying `messages`: one tag
    /// and one length prefix for the whole burst, then the messages back to
    /// back ([`Message::encode_burst`] produces exactly this many bytes; the
    /// roundtrip tests pin the equality).
    // analysis: hot_path
    pub fn burst_wire_bytes(messages: &[Message]) -> usize {
        1 + 4 + messages.iter().map(Message::wire_bytes).sum::<usize>()
    }

    /// Encodes the message into a length-prefixed binary frame (the stand-in for
    /// the ZMQ wire format, used by the volume accounting and by tests).
    // analysis: hot_path
    pub fn encode(&self) -> Bytes {
        // analysis: allow(alloc, reason = "the frame being built is the function's output; exactly one exact-size allocation per frame")
        let mut buf = BytesMut::with_capacity(self.wire_bytes());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes a whole burst of messages into **one** frame: a burst tag and
    /// a single `u32` count prefix, then the messages back to back (each is
    /// self-delimiting, so no per-message prefix is repeated). Amortises the
    /// per-message framing overhead when a real network transport flushes
    /// many queued time steps at once.
    // analysis: hot_path
    pub fn encode_burst(messages: &[Message]) -> Bytes {
        // analysis: allow(alloc, reason = "the burst frame being built is the function's output; exactly one exact-size allocation per burst")
        let mut buf = BytesMut::with_capacity(Self::burst_wire_bytes(messages));
        buf.put_u8(3);
        buf.put_u32(messages.len() as u32);
        for message in messages {
            message.encode_into(&mut buf);
        }
        buf.freeze()
    }

    // analysis: hot_path
    fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Message::Connect { client_id } => {
                buf.put_u8(0);
                buf.put_u64(*client_id);
            }
            Message::TimeStep {
                client_id,
                sequence,
                payload,
            } => {
                buf.put_u8(1);
                buf.put_u64(*client_id);
                buf.put_u64(*sequence);
                buf.put_u64(payload.simulation_id);
                buf.put_u64(payload.step as u64);
                buf.put_f64(payload.time);
                buf.put_u32(payload.parameters.len() as u32);
                for &p in &payload.parameters {
                    buf.put_f32(p);
                }
                buf.put_u32(payload.values.len() as u32);
                for &v in &payload.values {
                    buf.put_f32(v);
                }
            }
            Message::Finalize {
                client_id,
                sent_messages,
            } => {
                buf.put_u8(2);
                buf.put_u64(*client_id);
                buf.put_u64(*sent_messages);
            }
        }
    }

    /// Decodes a frame produced by [`Message::encode`]. A burst frame is
    /// rejected with [`DecodeError::BurstFrame`] — use
    /// [`Message::decode_burst`] for those.
    // analysis: hot_path
    pub fn decode(mut frame: Bytes) -> Result<Message, DecodeError> {
        if frame.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let tag = frame.get_u8();
        if tag == 3 {
            return Err(DecodeError::BurstFrame);
        }
        Self::decode_body(tag, &mut frame)
    }

    /// Decodes a burst frame produced by [`Message::encode_burst`] into its
    /// messages, in order.
    // analysis: hot_path
    pub fn decode_burst(mut frame: Bytes) -> Result<Vec<Message>, DecodeError> {
        if frame.remaining() < 1 + 4 {
            return Err(DecodeError::Truncated);
        }
        let tag = frame.get_u8();
        if tag != 3 {
            return Err(DecodeError::UnknownTag(tag));
        }
        let count = frame.get_u32() as usize;
        // The count is untrusted wire data: cap the reservation by what the
        // frame could possibly hold (the smallest message is 9 bytes), so a
        // corrupted count cannot force a huge allocation before the
        // per-message truncation checks reject the frame.
        // analysis: allow(alloc, reason = "the decoded message list is the function's output; the reservation is capped against the untrusted count")
        let mut messages = Vec::with_capacity(count.min(frame.remaining() / 9 + 1));
        for _ in 0..count {
            if frame.remaining() < 1 {
                return Err(DecodeError::Truncated);
            }
            let tag = frame.get_u8();
            if tag == 3 {
                return Err(DecodeError::BurstFrame);
            }
            messages.push(Self::decode_body(tag, &mut frame)?);
        }
        Ok(messages)
    }

    // analysis: hot_path
    fn decode_body(tag: u8, frame: &mut Bytes) -> Result<Message, DecodeError> {
        match tag {
            0 => {
                if frame.remaining() < 8 {
                    return Err(DecodeError::Truncated);
                }
                Ok(Message::Connect {
                    client_id: frame.get_u64(),
                })
            }
            1 => {
                if frame.remaining() < 8 * 5 + 4 {
                    return Err(DecodeError::Truncated);
                }
                let client_id = frame.get_u64();
                let sequence = frame.get_u64();
                let simulation_id = frame.get_u64();
                let step = frame.get_u64() as usize;
                let time = frame.get_f64();
                let n_params = frame.get_u32() as usize;
                if frame.remaining() < n_params * 4 + 4 {
                    return Err(DecodeError::Truncated);
                }
                // One spare slot beyond the parameters: the server-side
                // ingestion appends the time entry in place to build the
                // surrogate input without reallocating.
                // analysis: allow(alloc, reason = "the payload's parameter storage is the output and is reused in place downstream (spare slot for the time entry)")
                let mut parameters = Vec::with_capacity(n_params + 1);
                for _ in 0..n_params {
                    parameters.push(frame.get_f32());
                }
                let n_values = frame.get_u32() as usize;
                if frame.remaining() < n_values * 4 {
                    return Err(DecodeError::Truncated);
                }
                // analysis: allow(alloc, reason = "the payload's value storage is the function's output, moved into the sample without copying")
                let mut values = Vec::with_capacity(n_values);
                for _ in 0..n_values {
                    values.push(frame.get_f32());
                }
                Ok(Message::TimeStep {
                    client_id,
                    sequence,
                    payload: SamplePayload {
                        simulation_id,
                        step,
                        time,
                        parameters,
                        values,
                    },
                })
            }
            2 => {
                if frame.remaining() < 16 {
                    return Err(DecodeError::Truncated);
                }
                Ok(Message::Finalize {
                    client_id: frame.get_u64(),
                    sent_messages: frame.get_u64(),
                })
            }
            other => Err(DecodeError::UnknownTag(other)),
        }
    }
}

/// Errors produced when decoding a binary frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The frame ended before the message was complete.
    Truncated,
    /// The frame starts with an unknown message tag.
    UnknownTag(u8),
    /// A burst frame was handed to the single-message decoder (or nested
    /// inside another burst).
    BurstFrame,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated message frame"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::BurstFrame => {
                write!(f, "burst frame requires Message::decode_burst")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> SamplePayload {
        SamplePayload {
            simulation_id: 42,
            step: 7,
            time: 0.08,
            parameters: vec![300.0, 100.0, 200.0, 400.0, 500.0],
            values: vec![1.5, 2.5, -3.0, 0.0],
        }
    }

    #[test]
    fn payload_key_bytes_and_input() {
        let p = payload();
        assert_eq!(p.key(), (42, 7));
        assert_eq!(p.payload_bytes(), 24 + 4 * 9);
        let input = p.input_vector();
        assert_eq!(input.len(), 6);
        assert!((input[5] - 0.08).abs() < 1e-6);
    }

    #[test]
    fn encode_decode_roundtrip_timestep() {
        let msg = Message::TimeStep {
            client_id: 3,
            sequence: 99,
            payload: payload(),
        };
        let frame = msg.encode();
        assert_eq!(
            frame.len(),
            msg.wire_bytes(),
            "wire_bytes must be exact for TimeStep"
        );
        let decoded = Message::decode(frame).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn encode_decode_roundtrip_control_messages() {
        for msg in [
            Message::Connect { client_id: 11 },
            Message::Finalize {
                client_id: 11,
                sent_messages: 1234,
            },
        ] {
            let frame = msg.encode();
            assert_eq!(frame.len(), msg.wire_bytes(), "wire_bytes must be exact");
            assert_eq!(Message::decode(frame).unwrap(), msg);
        }
    }

    #[test]
    fn wire_bytes_is_exact_for_every_payload_shape() {
        for (n_params, n_values) in [(0usize, 0usize), (5, 1), (5, 256), (3, 17)] {
            let msg = Message::TimeStep {
                client_id: 7,
                sequence: 1,
                payload: SamplePayload {
                    simulation_id: 2,
                    step: 3,
                    time: 0.5,
                    parameters: vec![1.0; n_params],
                    values: vec![2.0; n_values],
                },
            };
            assert_eq!(
                msg.encode().len(),
                msg.wire_bytes(),
                "{n_params} params, {n_values} values"
            );
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            Message::decode(Bytes::from_static(&[9, 0, 0])),
            Err(DecodeError::UnknownTag(9))
        );
        assert_eq!(
            Message::decode(Bytes::from_static(&[1, 0])),
            Err(DecodeError::Truncated)
        );
        assert_eq!(Message::decode(Bytes::new()), Err(DecodeError::Truncated));
    }

    #[test]
    fn wire_bytes_tracks_payload_size() {
        let small = Message::TimeStep {
            client_id: 0,
            sequence: 0,
            payload: SamplePayload {
                simulation_id: 0,
                step: 0,
                time: 0.0,
                parameters: vec![],
                values: vec![],
            },
        };
        let large = Message::TimeStep {
            client_id: 0,
            sequence: 0,
            payload: payload(),
        };
        assert!(large.wire_bytes() > small.wire_bytes());
        assert_eq!(Message::Connect { client_id: 1 }.wire_bytes(), 9);
    }

    #[test]
    fn burst_roundtrip_with_exact_wire_bytes() {
        let messages = vec![
            Message::Connect { client_id: 4 },
            Message::TimeStep {
                client_id: 4,
                sequence: 0,
                payload: payload(),
            },
            Message::TimeStep {
                client_id: 4,
                sequence: 1,
                payload: SamplePayload {
                    step: 8,
                    ..payload()
                },
            },
            Message::Finalize {
                client_id: 4,
                sent_messages: 2,
            },
        ];
        let frame = Message::encode_burst(&messages);
        assert_eq!(
            frame.len(),
            Message::burst_wire_bytes(&messages),
            "burst_wire_bytes must be exact"
        );
        // One length prefix for the whole burst: cheaper than framing each
        // message on its own.
        let individual: usize = messages.iter().map(|m| m.wire_bytes() + 5).sum();
        assert!(Message::burst_wire_bytes(&messages) < individual);
        assert_eq!(Message::decode_burst(frame).unwrap(), messages);
    }

    #[test]
    fn empty_burst_roundtrips() {
        let frame = Message::encode_burst(&[]);
        assert_eq!(frame.len(), Message::burst_wire_bytes(&[]));
        assert_eq!(Message::decode_burst(frame).unwrap(), Vec::new());
    }

    #[test]
    fn burst_decode_rejects_malformed_frames() {
        let messages = vec![Message::Connect { client_id: 1 }];
        let frame = Message::encode_burst(&messages);
        // Truncated mid-burst.
        let cut = Bytes::copy_from_slice(&frame[..frame.len() - 4]);
        assert_eq!(Message::decode_burst(cut), Err(DecodeError::Truncated));
        // Single-message decoder refuses a burst, and vice versa.
        assert_eq!(Message::decode(frame), Err(DecodeError::BurstFrame));
        assert_eq!(
            Message::decode_burst(Message::Connect { client_id: 1 }.encode()),
            Err(DecodeError::UnknownTag(0))
        );
        assert_eq!(
            Message::decode_burst(Bytes::from_static(&[3, 0])),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn client_id_accessor() {
        assert_eq!(Message::Connect { client_id: 5 }.client_id(), 5);
        assert_eq!(
            Message::Finalize {
                client_id: 6,
                sent_messages: 0
            }
            .client_id(),
            6
        );
    }
}
