//! Streaming integrity checksum and config fingerprinting for durable state.
//!
//! The durable checkpoint store and completion journal (core crate) frame
//! every on-disk artifact with a 64-bit checksum so torn writes and bit
//! corruption are *detected* rather than silently resumed from. The hash is
//! the project's stable splitmix64 finalizer (same constants as
//! [`crate::fabric::stable_shard`]) folded over the byte stream in 8-byte
//! lanes — not cryptographic, but stable across platforms and releases, with
//! strong avalanche behavior for single-bit flips.
//!
//! [`fingerprint64`] hashes an arbitrary byte string (e.g. a canonical config
//! rendering) to a single u64, used to stamp checkpoint headers with the
//! experiment configuration so a resume against a different experiment is
//! rejected up front.

/// splitmix64 finalizer over one 64-bit lane (same constants as
/// [`crate::fabric::stable_shard`]).
#[inline]
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Incremental 64-bit checksum over a byte stream.
///
/// Bytes are packed little-endian into 64-bit lanes; each full lane is folded
/// into the state with the splitmix64 finalizer. [`Checksum64::finish`] folds
/// the partial tail lane together with the total length, so streams differing
/// only by trailing zero bytes (a classic truncation blind spot) hash
/// differently. Feeding the same bytes in different chunkings yields the same
/// digest.
#[derive(Debug, Clone)]
pub struct Checksum64 {
    state: u64,
    /// Partial lane being filled, little-endian.
    pending: u64,
    /// Bytes currently in `pending` (0..8).
    pending_len: u32,
    /// Total bytes consumed.
    length: u64,
}

impl Default for Checksum64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Checksum64 {
    /// A fresh checksum with a fixed, version-stable seed state.
    pub fn new() -> Self {
        Self {
            // Arbitrary non-zero seed so an all-zero stream does not hash to
            // a fixed point of the empty state.
            state: mix64(0x4D45_4C49_5353_4131), // b"MELISSA1" as a u64
            pending: 0,
            pending_len: 0,
            length: 0,
        }
    }

    /// Folds `bytes` into the checksum. Chunking-independent.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.pending |= u64::from(b) << (8 * self.pending_len);
            self.pending_len += 1;
            if self.pending_len == 8 {
                self.state = mix64(self.state ^ self.pending);
                self.pending = 0;
                self.pending_len = 0;
            }
        }
        self.length += bytes.len() as u64;
    }

    /// The digest over everything fed so far. Does not consume the hasher;
    /// further `update` calls continue the same stream.
    pub fn finish(&self) -> u64 {
        let mut state = self.state;
        if self.pending_len > 0 {
            state = mix64(state ^ self.pending ^ (u64::from(self.pending_len) << 56));
        }
        mix64(state ^ self.length)
    }

    /// One-shot digest of `bytes`.
    pub fn digest(bytes: &[u8]) -> u64 {
        let mut c = Self::new();
        c.update(bytes);
        c.finish()
    }
}

/// Hashes an arbitrary byte string (typically a canonical rendering of the
/// experiment configuration) to a 64-bit fingerprint, for stamping durable
/// checkpoint headers.
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    Checksum64::digest(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_chunking_independent() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let one_shot = Checksum64::digest(&data);
        let mut chunked = Checksum64::new();
        for chunk in data.chunks(7) {
            chunked.update(chunk);
        }
        assert_eq!(chunked.finish(), one_shot);
        let mut byte_by_byte = Checksum64::new();
        for &b in &data {
            byte_by_byte.update(&[b]);
        }
        assert_eq!(byte_by_byte.finish(), one_shot);
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let baseline = Checksum64::digest(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(
                    Checksum64::digest(&corrupted),
                    baseline,
                    "flip byte {i} bit {bit} undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_and_zero_extension_change_the_digest() {
        let data = vec![0u8; 64];
        let baseline = Checksum64::digest(&data);
        for len in 0..64 {
            assert_ne!(Checksum64::digest(&data[..len]), baseline, "len {len}");
        }
        let extended = vec![0u8; 72];
        assert_ne!(Checksum64::digest(&extended), baseline);
    }

    #[test]
    fn empty_stream_has_a_stable_nonzero_digest() {
        assert_eq!(Checksum64::digest(&[]), Checksum64::new().finish());
        assert_ne!(Checksum64::digest(&[]), 0);
    }

    #[test]
    fn finish_is_non_consuming() {
        let mut c = Checksum64::new();
        c.update(b"abc");
        let first = c.finish();
        assert_eq!(c.finish(), first);
        c.update(b"def");
        assert_eq!(c.finish(), Checksum64::digest(b"abcdef"));
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = fingerprint64(b"seed=42;clients=6;steps=10");
        let b = fingerprint64(b"seed=43;clients=6;steps=10");
        assert_ne!(a, b);
        assert_eq!(a, fingerprint64(b"seed=42;clients=6;steps=10"));
    }
}
