//! The second reference physics: 2D advection–diffusion of a Gaussian tracer.
//!
//! A pulse of tracer concentration is released at the centre of a rectangular
//! domain and transported by a constant velocity field while diffusing:
//!
//! ```text
//!   ∂u/∂t + v · ∇u = κ ∇²u
//! ```
//!
//! The five sampled parameters `X` are `[A, vx, vy, κ, σ₀]`: pulse amplitude,
//! the two velocity components, the diffusivity and the initial pulse width.
//! Mirroring the heat workload's [`WorkloadKind`](crate::Workload) split, the
//! trajectory can be produced either by a first-order upwind / central
//! finite-difference scheme ([`AdvectionVariant::FiniteDifference`]) or by the
//! closed-form free-space solution ([`AdvectionVariant::Analytic`]):
//!
//! ```text
//!   u(x, y, t) = A σ₀²/σ²(t) · exp(−|x − x₀ − v t|² / (2 σ²(t))),
//!   σ²(t) = σ₀² + 2 κ t
//! ```
//!
//! The parameter ranges are chosen so the pulse stays far from the boundary
//! over one trajectory, which keeps the free-space solution an accurate
//! reference; the finite-difference variant imposes the analytic values as
//! Dirichlet boundary conditions.

use crate::space::{ParamPoint, ParamRange, ParameterSpace};
use crate::traits::{Workload, WorkloadError, WorkloadStep};
use serde::{Deserialize, Serialize};

/// Index of the pulse amplitude in the parameter vector.
pub const P_AMPLITUDE: usize = 0;
/// Index of the x-velocity in the parameter vector.
pub const P_VELOCITY_X: usize = 1;
/// Index of the y-velocity in the parameter vector.
pub const P_VELOCITY_Y: usize = 2;
/// Index of the diffusivity in the parameter vector.
pub const P_DIFFUSIVITY: usize = 3;
/// Index of the initial pulse width in the parameter vector.
pub const P_SIGMA0: usize = 4;

/// How the advection–diffusion workload produces its time steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AdvectionVariant {
    /// First-order upwind advection with central diffusion (explicit Euler).
    #[default]
    FiniteDifference,
    /// The closed-form free-space Gaussian solution (fast; exact up to the
    /// boundary truncation the parameter ranges keep negligible).
    Analytic,
}

/// Configuration of the advection–diffusion workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdvectionConfig {
    /// Interior nodes along x.
    pub nx: usize,
    /// Interior nodes along y.
    pub ny: usize,
    /// Physical domain length along x.
    pub lx: f64,
    /// Physical domain length along y.
    pub ly: f64,
    /// Time step `Δt`.
    pub dt: f64,
    /// Number of time steps per trajectory.
    pub steps: usize,
}

impl Default for AdvectionConfig {
    fn default() -> Self {
        Self {
            nx: 16,
            ny: 16,
            lx: 1.0,
            ly: 1.0,
            dt: 0.02,
            steps: 25,
        }
    }
}

impl AdvectionConfig {
    /// Grid spacing along x; nodes sit at `x_i = (i + 1) · dx`, as in the heat
    /// workload.
    pub fn dx(&self) -> f64 {
        self.lx / (self.nx as f64 + 1.0)
    }

    /// Grid spacing along y.
    pub fn dy(&self) -> f64 {
        self.ly / (self.ny as f64 + 1.0)
    }

    /// Number of values in one emitted time step.
    pub fn field_len(&self) -> usize {
        self.nx * self.ny
    }
}

/// The advection–diffusion workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct AdvectionWorkload {
    /// Grid, Δt and trajectory length.
    pub config: AdvectionConfig,
    /// Data source (finite differences or closed form).
    pub variant: AdvectionVariant,
}

impl AdvectionWorkload {
    /// Creates a finite-difference-backed workload.
    pub fn finite_difference(config: AdvectionConfig) -> Self {
        Self {
            config,
            variant: AdvectionVariant::FiniteDifference,
        }
    }

    /// Creates a workload backed by the closed-form solution.
    pub fn analytic(config: AdvectionConfig) -> Self {
        Self {
            config,
            variant: AdvectionVariant::Analytic,
        }
    }

    /// The design space of `[A, vx, vy, κ, σ₀]`: amplitudes in `[0.5, 1]`,
    /// velocities in `[−0.3, 0.3]`, diffusivities in `[5·10⁻⁴, 5·10⁻³]` and
    /// initial widths in `[0.04, 0.1]` — chosen so the pulse never reaches the
    /// boundary within one trajectory.
    pub fn design_space() -> ParameterSpace {
        ParameterSpace::from_bounds([
            (0.5, 1.0),
            (-0.3, 0.3),
            (-0.3, 0.3),
            (5e-4, 5e-3),
            (0.04, 0.1),
        ])
    }

    /// The free-space solution at `(x, y, t)` for the given parameters.
    pub fn analytic_value(&self, params: &ParamPoint, x: f64, y: f64, time: f64) -> f64 {
        let (x0, y0) = (0.5 * self.config.lx, 0.5 * self.config.ly);
        let amplitude = params[P_AMPLITUDE];
        let sigma0_sq = params[P_SIGMA0] * params[P_SIGMA0];
        let sigma_sq = sigma0_sq + 2.0 * params[P_DIFFUSIVITY] * time;
        let cx = x - x0 - params[P_VELOCITY_X] * time;
        let cy = y - y0 - params[P_VELOCITY_Y] * time;
        amplitude * (sigma0_sq / sigma_sq) * (-(cx * cx + cy * cy) / (2.0 * sigma_sq)).exp()
    }

    /// The conservative explicit-stability number of the scheme at the worst
    /// corner of the design space: `Δt · (2κ(1/dx² + 1/dy²) + |vx|/dx + |vy|/dy)`
    /// must stay ≤ 1.
    pub fn stability_number(&self) -> f64 {
        let space = Self::design_space();
        let kappa = space.ranges[P_DIFFUSIVITY].max;
        let vx = space.ranges[P_VELOCITY_X].max.abs();
        let vy = space.ranges[P_VELOCITY_Y].max.abs();
        self.stability_number_for(kappa, vx, vy)
    }

    /// The explicit-stability number for one concrete `(κ, vx, vy)` draw.
    pub fn stability_number_for(&self, kappa: f64, vx: f64, vy: f64) -> f64 {
        let (dx, dy) = (self.config.dx(), self.config.dy());
        self.config.dt
            * (2.0 * kappa * (1.0 / (dx * dx) + 1.0 / (dy * dy)) + vx.abs() / dx + vy.abs() / dy)
    }

    fn analytic_field(&self, params: &ParamPoint, time: f64) -> Vec<f64> {
        let (dx, dy) = (self.config.dx(), self.config.dy());
        let mut values = Vec::with_capacity(self.config.field_len());
        for j in 0..self.config.ny {
            for i in 0..self.config.nx {
                let x = (i as f64 + 1.0) * dx;
                let y = (j as f64 + 1.0) * dy;
                values.push(self.analytic_value(params, x, y, time));
            }
        }
        values
    }

    /// One explicit upwind/central step of the interior field. `time` is the
    /// time of the *current* field, used for the analytic Dirichlet boundary.
    fn fd_step(&self, params: &ParamPoint, field: &[f64], time: f64) -> Vec<f64> {
        let (nx, ny) = (self.config.nx, self.config.ny);
        let (dx, dy) = (self.config.dx(), self.config.dy());
        let dt = self.config.dt;
        let kappa = params[P_DIFFUSIVITY];
        let (vx, vy) = (params[P_VELOCITY_X], params[P_VELOCITY_Y]);

        // Neighbour lookup falling back to the analytic Dirichlet boundary.
        let at = |i: isize, j: isize| -> f64 {
            if i >= 0 && i < nx as isize && j >= 0 && j < ny as isize {
                field[j as usize * nx + i as usize]
            } else {
                let x = (i as f64 + 1.0) * dx;
                let y = (j as f64 + 1.0) * dy;
                self.analytic_value(params, x, y, time)
            }
        };

        let mut next = vec![0.0; field.len()];
        for j in 0..ny as isize {
            for i in 0..nx as isize {
                let u = at(i, j);
                let (west, east) = (at(i - 1, j), at(i + 1, j));
                let (south, north) = (at(i, j - 1), at(i, j + 1));
                let laplacian =
                    (east - 2.0 * u + west) / (dx * dx) + (north - 2.0 * u + south) / (dy * dy);
                // First-order upwind: difference against the inflow side.
                let advect_x = if vx >= 0.0 {
                    vx * (u - west) / dx
                } else {
                    vx * (east - u) / dx
                };
                let advect_y = if vy >= 0.0 {
                    vy * (u - south) / dy
                } else {
                    vy * (north - u) / dy
                };
                next[j as usize * nx + i as usize] =
                    u + dt * (kappa * laplacian - advect_x - advect_y);
            }
        }
        next
    }

    fn check_params(&self, params: &ParamPoint) -> Result<(), WorkloadError> {
        if params.iter().any(|v| !v.is_finite()) {
            return Err(WorkloadError::InvalidParams(
                "parameters must be finite".into(),
            ));
        }
        if params[P_DIFFUSIVITY] < 0.0 {
            return Err(WorkloadError::InvalidParams(
                "diffusivity must be non-negative".into(),
            ));
        }
        if params[P_SIGMA0] <= 0.0 {
            return Err(WorkloadError::InvalidParams(
                "initial pulse width must be positive".into(),
            ));
        }
        if self.variant == AdvectionVariant::FiniteDifference {
            // The design-space check in validate() only covers the declared
            // box; a caller-supplied draw outside it must not silently produce
            // an unstable (overflowing) trajectory.
            let number = self.stability_number_for(
                params[P_DIFFUSIVITY],
                params[P_VELOCITY_X],
                params[P_VELOCITY_Y],
            );
            if number > 1.0 {
                return Err(WorkloadError::InvalidParams(format!(
                    "parameters violate the explicit stability limit (stability number {number:.3} > 1)"
                )));
            }
        }
        Ok(())
    }
}

impl Workload for AdvectionWorkload {
    fn name(&self) -> &'static str {
        match self.variant {
            AdvectionVariant::FiniteDifference => "advection-diffusion-2d",
            AdvectionVariant::Analytic => "advection-diffusion-2d-analytic",
        }
    }

    fn shape(&self) -> Vec<usize> {
        vec![self.config.nx, self.config.ny]
    }

    fn steps(&self) -> usize {
        self.config.steps
    }

    fn dt(&self) -> f64 {
        self.config.dt
    }

    fn parameter_space(&self) -> ParameterSpace {
        Self::design_space()
    }

    fn output_range(&self) -> ParamRange {
        // Concentrations stay within [0, A_max]; the maximum principle of both
        // variants keeps values inside the initial range.
        ParamRange::new(0.0, Self::design_space().ranges[P_AMPLITUDE].max)
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        if self.config.nx == 0 || self.config.ny == 0 {
            return Err(WorkloadError::InvalidConfig(
                "grid must be non-empty".into(),
            ));
        }
        if self.config.steps == 0 {
            return Err(WorkloadError::InvalidConfig(
                "at least one time step is required".into(),
            ));
        }
        if self.config.dt <= 0.0 || !self.config.dt.is_finite() {
            return Err(WorkloadError::InvalidConfig("dt must be positive".into()));
        }
        if self.config.lx <= 0.0 || self.config.ly <= 0.0 {
            return Err(WorkloadError::InvalidConfig(
                "domain lengths must be positive".into(),
            ));
        }
        if self.variant == AdvectionVariant::FiniteDifference {
            let stability_number = self.stability_number();
            if stability_number > 1.0 {
                return Err(WorkloadError::Unstable { stability_number });
            }
        }
        Ok(())
    }

    fn generate(
        &self,
        params: ParamPoint,
        sink: &mut dyn FnMut(WorkloadStep),
    ) -> Result<(), WorkloadError> {
        self.validate()?;
        self.check_params(&params)?;
        let emit = |step: usize, values: &[f64], sink: &mut dyn FnMut(WorkloadStep)| {
            sink(WorkloadStep {
                step,
                time: (step as f64 + 1.0) * self.config.dt,
                params,
                values: values.iter().map(|&v| v as f32).collect(),
            });
        };
        match self.variant {
            AdvectionVariant::Analytic => {
                for step in 0..self.config.steps {
                    let time = (step as f64 + 1.0) * self.config.dt;
                    emit(step, &self.analytic_field(&params, time), sink);
                }
            }
            AdvectionVariant::FiniteDifference => {
                let mut field = self.analytic_field(&params, 0.0);
                for step in 0..self.config.steps {
                    let time = step as f64 * self.config.dt;
                    field = self.fd_step(&params, &field, time);
                    emit(step, &field, sink);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid_params() -> ParamPoint {
        let mut p = AdvectionWorkload::design_space().midpoint();
        // A non-zero velocity exercises the upwind switch in both directions.
        p[P_VELOCITY_X] = 0.2;
        p[P_VELOCITY_Y] = -0.15;
        p
    }

    #[test]
    fn default_config_is_stable_and_valid() {
        let w = AdvectionWorkload::finite_difference(AdvectionConfig::default());
        assert!(w.validate().is_ok());
        assert!(w.stability_number() <= 1.0, "{}", w.stability_number());
    }

    #[test]
    fn both_variants_produce_full_finite_trajectories() {
        for variant in [
            AdvectionVariant::Analytic,
            AdvectionVariant::FiniteDifference,
        ] {
            let w = AdvectionWorkload {
                config: AdvectionConfig::default(),
                variant,
            };
            let steps = w.trajectory(mid_params()).unwrap();
            assert_eq!(steps.len(), 25);
            for (k, s) in steps.iter().enumerate() {
                assert_eq!(s.step, k);
                assert_eq!(s.values.len(), 256);
                assert!(s.values.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn values_respect_the_maximum_principle() {
        for variant in [
            AdvectionVariant::Analytic,
            AdvectionVariant::FiniteDifference,
        ] {
            let w = AdvectionWorkload {
                config: AdvectionConfig::default(),
                variant,
            };
            let range = w.output_range();
            for s in w.trajectory(mid_params()).unwrap() {
                for &v in &s.values {
                    assert!(
                        (v as f64) >= range.min - 1e-6 && (v as f64) <= range.max + 1e-6,
                        "value {v} escapes {:?} ({variant:?})",
                        range
                    );
                }
            }
        }
    }

    #[test]
    fn analytic_pulse_advects_downstream() {
        let w = AdvectionWorkload::analytic(AdvectionConfig::default());
        let params = mid_params();
        let steps = w.trajectory(params).unwrap();
        let centroid_x = |values: &[f32]| {
            let dx = w.config.dx();
            let mut mass = 0.0f64;
            let mut moment = 0.0f64;
            for j in 0..w.config.ny {
                for i in 0..w.config.nx {
                    let v = values[j * w.config.nx + i] as f64;
                    mass += v;
                    moment += v * (i as f64 + 1.0) * dx;
                }
            }
            moment / mass
        };
        let first = centroid_x(&steps.first().unwrap().values);
        let last = centroid_x(&steps.last().unwrap().values);
        assert!(
            last > first + 0.05,
            "pulse must move with vx > 0: {first} → {last}"
        );
    }

    #[test]
    fn invalid_configs_and_params_are_rejected() {
        let config = AdvectionConfig {
            nx: 0,
            ..AdvectionConfig::default()
        };
        assert!(matches!(
            AdvectionWorkload::finite_difference(config).validate(),
            Err(WorkloadError::InvalidConfig(_))
        ));

        // A dt far beyond the explicit stability limit.
        let config = AdvectionConfig {
            dt: 1.0,
            ..AdvectionConfig::default()
        };
        assert!(matches!(
            AdvectionWorkload::finite_difference(config).validate(),
            Err(WorkloadError::Unstable { .. })
        ));
        // The analytic variant has no stability constraint.
        assert!(AdvectionWorkload::analytic(config).validate().is_ok());

        let w = AdvectionWorkload::analytic(AdvectionConfig::default());
        let mut params = mid_params();
        params[P_SIGMA0] = 0.0;
        assert!(matches!(
            w.trajectory(params),
            Err(WorkloadError::InvalidParams(_))
        ));
    }
}
