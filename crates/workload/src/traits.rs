//! The physics-agnostic [`Workload`] trait.
//!
//! The paper's framework claim is that online surrogate training is independent
//! of the solver: clients are black boxes that stream time steps. This module
//! captures the full contract the training stack needs from such a black box —
//! deterministic trajectory generation from a parameter vector, plus the shape
//! and range metadata required to size the surrogate and normalise its
//! inputs/outputs. Everything above this trait (validation sets, aggregators,
//! the online and offline experiment drivers) is physics-free.

use crate::space::{ParamPoint, ParamRange, ParameterSpace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced by workload validation and generation.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The workload configuration is inconsistent.
    InvalidConfig(String),
    /// The numerical scheme would be unstable on the requested discretisation.
    Unstable {
        /// The offending stability number (scheme-specific; must be ≤ 1 after
        /// normalisation by the scheme's own limit).
        stability_number: f64,
    },
    /// The parameter vector lies outside the workload's parameter space.
    InvalidParams(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidConfig(reason) => {
                write!(f, "invalid workload configuration: {reason}")
            }
            WorkloadError::Unstable { stability_number } => write!(
                f,
                "numerical scheme unstable: stability number {stability_number:.3} exceeds its limit"
            ),
            WorkloadError::InvalidParams(reason) => {
                write!(f, "invalid workload parameters: {reason}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// One gathered, down-converted time step — the unit of data a client streams
/// to the training server (one training sample together with its input
/// `(X, t)`), independent of the physics that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadStep {
    /// Zero-based time-step index.
    pub step: usize,
    /// Physical time `t = (step + 1) · Δt`.
    pub time: f64,
    /// The parameter vector `X` of the trajectory this step belongs to.
    pub params: ParamPoint,
    /// Gathered field values, row-major, converted to `f32`.
    pub values: Vec<f32>,
}

impl WorkloadStep {
    /// The surrogate input vector `(X, t)` as `f32` (`PARAM_DIM + 1` entries).
    pub fn input_vector(&self) -> Vec<f32> {
        let mut v: Vec<f32> = self.params.iter().map(|&p| p as f32).collect();
        v.push(self.time as f32);
        v
    }

    /// Size of the payload in bytes (excluding metadata).
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>()
    }
}

/// A black-box generator of solver-shaped time-step streams.
///
/// Implementations must be **deterministic**: calling [`Workload::generate`]
/// twice with the same parameter vector must emit bit-identical streams, so
/// restarted clients replay the exact same trajectory and validation sets are
/// reproducible from a seed alone.
pub trait Workload: Send + Sync {
    /// A short, stable physics label ("heat2d", "advection-diffusion-2d", …).
    fn name(&self) -> &'static str;

    /// The grid dimensions of one emitted field (e.g. `[nx, ny]`); the field
    /// length is the product of the entries.
    fn shape(&self) -> Vec<usize>;

    /// Number of time steps per trajectory.
    fn steps(&self) -> usize;

    /// Time-step size `Δt`.
    fn dt(&self) -> f64;

    /// The space the parameter vector `X` is sampled from.
    fn parameter_space(&self) -> ParameterSpace;

    /// The physical range field values live in, used to normalise the
    /// surrogate targets.
    fn output_range(&self) -> ParamRange;

    /// Validates the workload configuration.
    fn validate(&self) -> Result<(), WorkloadError>;

    /// Generates the full trajectory for one parameter draw, invoking `sink`
    /// for every produced step in time order.
    fn generate(
        &self,
        params: ParamPoint,
        sink: &mut dyn FnMut(WorkloadStep),
    ) -> Result<(), WorkloadError>;

    /// Generates the trajectory for one parameter draw under an explicit
    /// attempt seed. Deterministic workloads (the default) ignore the seed —
    /// every attempt replays the identical stream, which is what checkpoint
    /// resume relies on. *Stochastic* workloads (e.g. seeded observation
    /// noise) override this: the stream must be a pure function of
    /// `(params, seed)`, so a retried attempt with the launcher's
    /// per-attempt seed draws fresh noise while a replayed attempt with the
    /// same seed is bit-identical.
    fn generate_seeded(
        &self,
        params: ParamPoint,
        _seed: u64,
        sink: &mut dyn FnMut(WorkloadStep),
    ) -> Result<(), WorkloadError> {
        self.generate(params, sink)
    }

    /// Number of values in one emitted time step.
    fn field_len(&self) -> usize {
        self.shape().iter().product()
    }

    /// Physical duration of one trajectory.
    fn duration(&self) -> f64 {
        self.steps() as f64 * self.dt()
    }

    /// Size in bytes of one emitted (f32) time step.
    fn step_bytes(&self) -> usize {
        self.field_len() * std::mem::size_of::<f32>()
    }

    /// Size in bytes of one full trajectory.
    fn trajectory_bytes(&self) -> usize {
        self.step_bytes() * self.steps()
    }

    /// Generates and collects the full trajectory.
    fn trajectory(&self, params: ParamPoint) -> Result<Vec<WorkloadStep>, WorkloadError> {
        let mut out = Vec::with_capacity(self.steps());
        self.generate(params, &mut |s| out.push(s))?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_step_input_vector_appends_time() {
        let step = WorkloadStep {
            step: 2,
            time: 0.25,
            params: [1.0, 2.0, 3.0, 4.0, 5.0],
            values: vec![0.0; 8],
        };
        let input = step.input_vector();
        assert_eq!(input.len(), 6);
        assert_eq!(input[0], 1.0);
        assert_eq!(input[5], 0.25);
        assert_eq!(step.payload_bytes(), 32);
    }

    #[test]
    fn errors_render_their_context() {
        let e = WorkloadError::InvalidConfig("grid must be non-empty".into());
        assert!(e.to_string().contains("grid must be non-empty"));
        let e = WorkloadError::Unstable {
            stability_number: 2.5,
        };
        assert!(e.to_string().contains("2.5"));
        let e = WorkloadError::InvalidParams("negative diffusivity".into());
        assert!(e.to_string().contains("negative diffusivity"));
    }
}
