//! # melissa-workload
//!
//! The physics-agnostic workload abstraction of the Melissa reproduction.
//!
//! The SC'23 paper's framework claim is that online surrogate training is
//! *independent of the solver*: ensemble clients are black boxes that stream
//! time steps to the training server. This crate is that seam, with no
//! dependency on any concrete solver:
//!
//! * [`Workload`] — the trait every physics implements: deterministic
//!   `generate(params) → stream of [`WorkloadStep`]`, plus the shape, timing
//!   and range metadata the training stack needs to size the surrogate and
//!   normalise its inputs and outputs.
//! * [`ParameterSpace`] / [`ParamRange`] / [`ParamPoint`] — the sampled design
//!   space, shared by the experimental-design samplers in `melissa-ensemble`
//!   and by every workload.
//! * [`WorkloadError`] — the typed error hierarchy for workload validation and
//!   generation.
//! * [`advection`] — the reference second physics: 2D advection–diffusion of a
//!   Gaussian tracer, with analytic and finite-difference variants, proving the
//!   training stack runs unchanged on a physics it was not written for. (The
//!   first physics, the paper's 2D heat equation, lives in the `heat-solver`
//!   crate and implements [`Workload`] there.)

pub mod advection;
pub mod space;
pub mod traits;

pub use advection::{AdvectionConfig, AdvectionVariant, AdvectionWorkload};
pub use space::{ParamPoint, ParamRange, ParameterSpace, PARAM_DIM};
pub use traits::{Workload, WorkloadError, WorkloadStep};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advection_workload_through_the_trait_object() {
        let workload: Box<dyn Workload> =
            Box::new(AdvectionWorkload::analytic(AdvectionConfig::default()));
        assert_eq!(workload.shape(), vec![16, 16]);
        assert_eq!(workload.field_len(), 256);
        assert_eq!(workload.step_bytes(), 1024);
        assert_eq!(workload.trajectory_bytes(), 1024 * 25);
        assert!((workload.duration() - 0.5).abs() < 1e-12);
        let params = workload.parameter_space().midpoint();
        let steps = workload.trajectory(params).unwrap();
        assert_eq!(steps.len(), workload.steps());
    }
}
