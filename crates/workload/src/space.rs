//! The sampled parameter space shared by every workload.
//!
//! The framework streams time steps of black-box simulations whose behaviour is
//! controlled by a fixed-dimension parameter vector `X` (the paper uses five
//! temperatures; the advection–diffusion reference workload reinterprets the
//! same five slots as pulse amplitude, velocity, diffusivity and width).
//! Experimental-design samplers draw points on the unit hypercube and map them
//! through a [`ParameterSpace`] — per-dimension [`ParamRange`]s — so neither
//! the samplers nor the launcher need to know anything about the physics.

use serde::{Deserialize, Serialize};

/// Number of sampled input parameters (the dimension of `X` in the paper).
pub const PARAM_DIM: usize = 5;

/// One sampled parameter vector `X`.
pub type ParamPoint = [f64; PARAM_DIM];

/// The inclusive range one parameter dimension is sampled from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamRange {
    /// Lower bound (inclusive).
    pub min: f64,
    /// Upper bound (inclusive).
    pub max: f64,
}

impl Default for ParamRange {
    fn default() -> Self {
        // The paper's temperature range, in Kelvin.
        Self {
            min: 100.0,
            max: 500.0,
        }
    }
}

impl ParamRange {
    /// Creates a range, panicking when `min > max`.
    pub fn new(min: f64, max: f64) -> Self {
        assert!(min <= max, "invalid parameter range: {min} > {max}");
        Self { min, max }
    }

    /// Width of the range.
    pub fn span(&self) -> f64 {
        self.max - self.min
    }

    /// Maps a unit-interval coordinate `u ∈ [0, 1]` into the range.
    pub fn lerp(&self, u: f64) -> f64 {
        self.min + u.clamp(0.0, 1.0) * self.span()
    }

    /// Maps a value of the range back to the unit interval.
    pub fn normalize(&self, value: f64) -> f64 {
        if self.span() == 0.0 {
            0.0
        } else {
            ((value - self.min) / self.span()).clamp(0.0, 1.0)
        }
    }

    /// The midpoint of the range.
    pub fn midpoint(&self) -> f64 {
        self.min + 0.5 * self.span()
    }
}

/// The sampled parameter space: one [`ParamRange`] per input dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParameterSpace {
    /// Per-dimension ranges.
    pub ranges: [ParamRange; PARAM_DIM],
}

impl Default for ParameterSpace {
    fn default() -> Self {
        // The paper's design space: five temperatures in [100, 500] K.
        Self {
            ranges: [ParamRange::default(); PARAM_DIM],
        }
    }
}

impl ParameterSpace {
    /// A space where every dimension shares the same range.
    pub fn uniform(range: ParamRange) -> Self {
        Self {
            ranges: [range; PARAM_DIM],
        }
    }

    /// A space built from per-dimension `(min, max)` bounds.
    pub fn from_bounds(bounds: [(f64, f64); PARAM_DIM]) -> Self {
        Self {
            ranges: bounds.map(|(min, max)| ParamRange::new(min, max)),
        }
    }

    /// Maps a unit hypercube point into a parameter vector.
    pub fn from_unit(&self, u: ParamPoint) -> ParamPoint {
        let mut x = [0.0; PARAM_DIM];
        for (k, (range, coord)) in self.ranges.iter().zip(u.iter()).enumerate() {
            x[k] = range.lerp(*coord);
        }
        x
    }

    /// Maps a parameter vector back to the unit hypercube.
    pub fn to_unit(&self, params: &ParamPoint) -> ParamPoint {
        let mut u = [0.0; PARAM_DIM];
        for k in 0..PARAM_DIM {
            u[k] = self.ranges[k].normalize(params[k]);
        }
        u
    }

    /// True when the parameter vector lies inside the space.
    pub fn contains(&self, params: &ParamPoint) -> bool {
        self.ranges
            .iter()
            .zip(params.iter())
            .all(|(r, v)| *v >= r.min && *v <= r.max)
    }

    /// The centre of the space (every dimension at its midpoint).
    pub fn midpoint(&self) -> ParamPoint {
        self.ranges.map(|r| r.midpoint())
    }

    /// The smallest single range covering every dimension, used to build an
    /// affine input normaliser when the dimensions share comparable scales.
    pub fn bounding_range(&self) -> ParamRange {
        let min = self
            .ranges
            .iter()
            .map(|r| r.min)
            .fold(f64::INFINITY, f64::min);
        let max = self
            .ranges
            .iter()
            .map(|r| r.max)
            .fold(f64::NEG_INFINITY, f64::max);
        ParamRange { min, max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_lerp_and_normalize_are_inverse() {
        let r = ParamRange::new(100.0, 500.0);
        for &u in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = r.lerp(u);
            assert!((r.normalize(v) - u).abs() < 1e-12);
        }
    }

    #[test]
    fn range_lerp_clamps() {
        let r = ParamRange::new(0.0, 10.0);
        assert_eq!(r.lerp(-1.0), 0.0);
        assert_eq!(r.lerp(2.0), 10.0);
        assert_eq!(r.midpoint(), 5.0);
    }

    #[test]
    #[should_panic(expected = "invalid parameter range")]
    fn range_rejects_inverted_bounds() {
        let _ = ParamRange::new(10.0, 0.0);
    }

    #[test]
    fn space_unit_mapping_roundtrip() {
        let space = ParameterSpace::default();
        let u = [0.1, 0.2, 0.3, 0.4, 0.5];
        let p = space.from_unit(u);
        assert!(space.contains(&p));
        let back = space.to_unit(&p);
        for k in 0..PARAM_DIM {
            assert!((back[k] - u[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn default_space_matches_paper_range() {
        let space = ParameterSpace::default();
        let low = space.from_unit([0.0; PARAM_DIM]);
        let high = space.from_unit([1.0; PARAM_DIM]);
        assert!(low.iter().all(|&v| v == 100.0));
        assert!(high.iter().all(|&v| v == 500.0));
    }

    #[test]
    fn per_dimension_bounds_and_bounding_range() {
        let space = ParameterSpace::from_bounds([
            (0.5, 1.0),
            (-0.3, 0.3),
            (-0.3, 0.3),
            (5e-4, 5e-3),
            (0.04, 0.1),
        ]);
        let mid = space.midpoint();
        assert!((mid[0] - 0.75).abs() < 1e-12);
        assert!(mid[1].abs() < 1e-12);
        let bounding = space.bounding_range();
        assert_eq!(bounding.min, -0.3);
        assert_eq!(bounding.max, 1.0);
    }
}
