//! Property-based tests of the [`Workload`] contract on the advection–diffusion
//! reference physics: determinism, shape discipline, physical bounds, and
//! agreement between the analytic and finite-difference variants.

use melissa_workload::{AdvectionConfig, AdvectionVariant, AdvectionWorkload, Workload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same parameters ⇒ bit-identical stream, for both variants. This is the
    /// contract restarted clients and validation sets rely on.
    #[test]
    fn generation_is_deterministic(
        amplitude in 0.5f64..1.0,
        vx in -0.3f64..0.3,
        vy in -0.3f64..0.3,
        kappa in 5e-4f64..5e-3,
        sigma in 0.04f64..0.1,
        fd in any::<bool>(),
    ) {
        let params = [amplitude, vx, vy, kappa, sigma];
        let variant = if fd {
            AdvectionVariant::FiniteDifference
        } else {
            AdvectionVariant::Analytic
        };
        let workload = AdvectionWorkload { config: AdvectionConfig::default(), variant };
        let a = workload.trajectory(params).unwrap();
        let b = workload.trajectory(params).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Every emitted field has exactly `shape` product values, every step index
    /// and time is consistent, and every value is finite and in range.
    #[test]
    fn fields_match_the_declared_shape(
        amplitude in 0.5f64..1.0,
        vx in -0.3f64..0.3,
        vy in -0.3f64..0.3,
        kappa in 5e-4f64..5e-3,
        sigma in 0.04f64..0.1,
        nx in 4usize..12,
        ny in 4usize..12,
        steps in 1usize..12,
        fd in any::<bool>(),
    ) {
        let params = [amplitude, vx, vy, kappa, sigma];
        let config = AdvectionConfig { nx, ny, steps, ..AdvectionConfig::default() };
        let variant = if fd {
            AdvectionVariant::FiniteDifference
        } else {
            AdvectionVariant::Analytic
        };
        let workload = AdvectionWorkload { config, variant };
        prop_assert_eq!(workload.field_len(), nx * ny);
        let trajectory = workload.trajectory(params).unwrap();
        prop_assert_eq!(trajectory.len(), steps);
        let range = workload.output_range();
        for (k, step) in trajectory.iter().enumerate() {
            prop_assert_eq!(step.step, k);
            prop_assert!((step.time - (k as f64 + 1.0) * config.dt).abs() < 1e-12);
            prop_assert_eq!(step.values.len(), nx * ny);
            prop_assert_eq!(step.params, params);
            for &v in &step.values {
                prop_assert!(v.is_finite());
                prop_assert!((v as f64) >= range.min - 1e-5 && (v as f64) <= range.max + 1e-5);
            }
        }
    }

    /// The first-order finite-difference variant tracks the closed form on a
    /// coarse grid. The comparison runs in the regime the scheme resolves —
    /// pulse width at least ~1.5 grid spacings (σ₀ ≥ 0.06 on a 24×24 grid) and
    /// moderate velocities, since upwinding adds `|v|·dx/2` of numerical
    /// diffusion — with a tolerance calibrated to the worst corner of that box.
    #[test]
    fn analytic_and_finite_difference_agree(
        amplitude in 0.5f64..1.0,
        vx in -0.15f64..0.15,
        vy in -0.15f64..0.15,
        kappa in 5e-4f64..5e-3,
        sigma in 0.06f64..0.1,
    ) {
        let params = [amplitude, vx, vy, kappa, sigma];
        let config = AdvectionConfig { nx: 24, ny: 24, ..AdvectionConfig::default() };
        let analytic = AdvectionWorkload::analytic(config).trajectory(params).unwrap();
        let fd = AdvectionWorkload::finite_difference(config)
            .trajectory(params)
            .unwrap();
        let last_a = analytic.last().unwrap();
        let last_f = fd.last().unwrap();
        let amplitude = params[0] as f32;
        let mut max_abs = 0.0f32;
        let mut sum_abs = 0.0f32;
        for (a, f) in last_a.values.iter().zip(&last_f.values) {
            let d = (a - f).abs();
            max_abs = max_abs.max(d);
            sum_abs += d;
        }
        let mean_abs = sum_abs / last_a.values.len() as f32;
        prop_assert!(
            max_abs <= 0.40 * amplitude,
            "max abs error {max_abs} vs amplitude {amplitude}"
        );
        prop_assert!(
            mean_abs <= 0.03 * amplitude,
            "mean abs error {mean_abs} vs amplitude {amplitude}"
        );
    }
}
