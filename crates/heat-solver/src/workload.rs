//! Synthetic workload generation for throughput experiments.
//!
//! The paper's largest experiment streams 8 TB of solver output through the
//! framework. Reproducing the *framework* behaviour (buffer dynamics, throughput
//! balance, scheduler effects) does not require paying the full solver cost for
//! every sample, so this module provides a [`SyntheticWorkload`] that can emit
//! time steps either from the real solver ([`WorkloadKind::Solver`]) or from a
//! cheap closed-form approximation ([`WorkloadKind::Analytic`]) with an optional
//! per-step artificial compute delay to emulate a given solver cost.

use crate::analytic::approximate_transient;
use crate::boundary::BoundaryConditions;
use crate::params::SimulationParams;
use crate::solver::{HeatSolver, SolverConfig, SolverError, TimeStepField};
use melissa_workload::{
    ParamPoint, ParamRange, ParameterSpace, Workload, WorkloadError, WorkloadStep,
};
use serde::{Deserialize, Serialize};
use std::time::Duration;

impl From<SolverError> for WorkloadError {
    fn from(error: SolverError) -> Self {
        match error {
            SolverError::InvalidConfig(reason) => WorkloadError::InvalidConfig(reason),
            SolverError::UnstableExplicitScheme { stability_number } => WorkloadError::Unstable {
                // Normalise by the explicit limit (0.5) so 1.0 is the boundary.
                stability_number: stability_number / 0.5,
            },
        }
    }
}

/// How the workload produces its time steps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum WorkloadKind {
    /// Run the actual finite-difference solver (accurate, slower).
    #[default]
    Solver,
    /// Evaluate a closed-form approximation of the solution (fast; preserves the
    /// data shape, sizes and parameter dependence needed by framework studies).
    Analytic,
}

/// A generator of solver-shaped time-step streams.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    /// Solver configuration (grid, steps, Δt, …).
    pub config: SolverConfig,
    /// Data source.
    pub kind: WorkloadKind,
    /// Optional artificial per-step compute time, emulating a more expensive
    /// solver or slower hardware; applied by [`SyntheticWorkload::generate`].
    pub step_delay: Duration,
    /// Amplitude (in Kelvin) of seeded uniform observation noise added to
    /// every emitted value; 0 (the default) streams the exact field. The
    /// noise stream is a pure function of the attempt seed passed to
    /// `Workload::generate_seeded`, so a retried client attempt observes
    /// fresh noise while a replayed attempt is bit-identical.
    pub noise_amplitude: f64,
}

impl SyntheticWorkload {
    /// Creates a workload backed by the real solver.
    pub fn solver(config: SolverConfig) -> Self {
        Self {
            config,
            kind: WorkloadKind::Solver,
            step_delay: Duration::ZERO,
            noise_amplitude: 0.0,
        }
    }

    /// Creates a workload backed by the closed-form approximation.
    pub fn analytic(config: SolverConfig) -> Self {
        Self {
            config,
            kind: WorkloadKind::Analytic,
            step_delay: Duration::ZERO,
            noise_amplitude: 0.0,
        }
    }

    /// Creates the noisy variant: the closed-form field plus seeded uniform
    /// observation noise of the given amplitude (Kelvin).
    pub fn noisy(config: SolverConfig, noise_amplitude: f64) -> Self {
        Self {
            config,
            kind: WorkloadKind::Analytic,
            step_delay: Duration::ZERO,
            noise_amplitude,
        }
    }

    /// Sets the artificial per-step delay.
    pub fn with_step_delay(mut self, delay: Duration) -> Self {
        self.step_delay = delay;
        self
    }

    /// Generates the full trajectory for one parameter draw, invoking `sink`
    /// for every produced step (in time order).
    pub fn generate(
        &self,
        params: SimulationParams,
        mut sink: impl FnMut(TimeStepField),
    ) -> Result<(), SolverError> {
        match self.kind {
            WorkloadKind::Solver => {
                let solver = HeatSolver::new(self.config, params)?;
                for step in solver.run()? {
                    if !self.step_delay.is_zero() {
                        std::thread::sleep(self.step_delay);
                    }
                    sink(step);
                }
                Ok(())
            }
            WorkloadKind::Analytic => {
                self.config.validate()?;
                for step in 0..self.config.steps {
                    if !self.step_delay.is_zero() {
                        std::thread::sleep(self.step_delay);
                    }
                    sink(self.analytic_step(params, step));
                }
                Ok(())
            }
        }
    }

    /// Generates and collects the full trajectory.
    pub fn trajectory(&self, params: SimulationParams) -> Result<Vec<TimeStepField>, SolverError> {
        let mut out = Vec::with_capacity(self.config.steps);
        self.generate(params, |s| out.push(s))?;
        Ok(out)
    }

    /// One closed-form step.
    fn analytic_step(&self, params: SimulationParams, step: usize) -> TimeStepField {
        let grid = self.config.grid();
        let bc = BoundaryConditions::from_params(&params);
        let time = (step as f64 + 1.0) * self.config.dt;
        let mut values = Vec::with_capacity(grid.len());
        for j in 0..grid.ny {
            for i in 0..grid.nx {
                let (x, y) = grid.coords(i, j);
                values.push(approximate_transient(
                    grid,
                    &bc,
                    params.t_initial,
                    self.config.alpha,
                    time,
                    x,
                    y,
                ) as f32);
            }
        }
        TimeStepField {
            step,
            time,
            params,
            nx: self.config.nx,
            ny: self.config.ny,
            values,
        }
    }

    /// Total number of bytes one trajectory of this workload produces.
    pub fn trajectory_bytes(&self) -> usize {
        self.config.trajectory_bytes()
    }
}

impl SyntheticWorkload {
    /// The shared body of the trait's `generate`/`generate_seeded`: runs the
    /// underlying generator and, for the noisy variant, perturbs every value
    /// with uniform noise drawn from a ChaCha8 stream keyed by `seed` alone
    /// (seed-policy stream "attempt-v1": the launcher derives the seed per
    /// (campaign, client, attempt), so retries re-observe, replays repeat).
    fn generate_with_seed(
        &self,
        params: ParamPoint,
        seed: u64,
        sink: &mut dyn FnMut(WorkloadStep),
    ) -> Result<(), WorkloadError> {
        use rand::{Rng, SeedableRng};
        let mut rng =
            (self.noise_amplitude > 0.0).then(|| rand_chacha::ChaCha8Rng::seed_from_u64(seed));
        let amplitude = self.noise_amplitude as f32;
        SyntheticWorkload::generate(self, SimulationParams::new(params), |field| {
            let mut values = field.values;
            if let Some(rng) = rng.as_mut() {
                for value in &mut values {
                    *value += rng.gen_range(-amplitude..=amplitude);
                }
            }
            sink(WorkloadStep {
                step: field.step,
                time: field.time,
                params,
                values,
            })
        })
        .map_err(Into::into)
    }
}

/// The paper's physics, seen through the physics-agnostic seam: the training
/// stack drives [`SyntheticWorkload`] exclusively through this impl.
impl Workload for SyntheticWorkload {
    fn name(&self) -> &'static str {
        if self.noise_amplitude > 0.0 {
            return "heat2d-noisy";
        }
        match self.kind {
            WorkloadKind::Solver => "heat2d",
            WorkloadKind::Analytic => "heat2d-analytic",
        }
    }

    fn shape(&self) -> Vec<usize> {
        vec![self.config.nx, self.config.ny]
    }

    fn steps(&self) -> usize {
        self.config.steps
    }

    fn dt(&self) -> f64 {
        self.config.dt
    }

    fn parameter_space(&self) -> ParameterSpace {
        // The paper's design space: five temperatures in [100, 500] K.
        ParameterSpace::default()
    }

    fn output_range(&self) -> ParamRange {
        // The maximum principle keeps the field inside the sampled range.
        ParamRange::default()
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        if !self.noise_amplitude.is_finite() || self.noise_amplitude < 0.0 {
            return Err(WorkloadError::InvalidConfig(format!(
                "noise amplitude must be finite and non-negative, got {}",
                self.noise_amplitude
            )));
        }
        self.config.validate().map_err(Into::into)
    }

    fn generate(
        &self,
        params: ParamPoint,
        sink: &mut dyn FnMut(WorkloadStep),
    ) -> Result<(), WorkloadError> {
        // The unseeded path is attempt seed 0, so the determinism contract
        // (same params → same stream) holds for the noisy variant too.
        self.generate_with_seed(params, 0, sink)
    }

    fn generate_seeded(
        &self,
        params: ParamPoint,
        seed: u64,
        sink: &mut dyn FnMut(WorkloadStep),
    ) -> Result<(), WorkloadError> {
        self.generate_with_seed(params, seed, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SolverConfig {
        SolverConfig {
            nx: 8,
            ny: 8,
            steps: 6,
            ..SolverConfig::default()
        }
    }

    fn params() -> SimulationParams {
        SimulationParams::new([400.0, 150.0, 200.0, 250.0, 300.0])
    }

    #[test]
    fn analytic_workload_produces_full_trajectory() {
        let w = SyntheticWorkload::analytic(config());
        let steps = w.trajectory(params()).unwrap();
        assert_eq!(steps.len(), 6);
        for (k, s) in steps.iter().enumerate() {
            assert_eq!(s.step, k);
            assert_eq!(s.values.len(), 64);
            assert!(s.values.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn analytic_values_stay_in_physical_range() {
        let w = SyntheticWorkload::analytic(config());
        let steps = w.trajectory(params()).unwrap();
        for s in steps {
            for &v in &s.values {
                assert!(
                    (100.0..=500.0).contains(&v),
                    "value {v} escapes sampled range"
                );
            }
        }
    }

    #[test]
    fn solver_and_analytic_agree_qualitatively_late_in_time() {
        // Late in the trajectory both converge towards a boundary-driven field.
        let mut cfg = config();
        cfg.steps = 200;
        cfg.dt = 0.01;
        let analytic = SyntheticWorkload::analytic(cfg);
        let solver = SyntheticWorkload::solver(cfg);
        let p = params();
        let a = analytic.trajectory(p).unwrap();
        let s = solver.trajectory(p).unwrap();
        let last_a = a.last().unwrap();
        let last_s = s.last().unwrap();
        let mean_a: f32 = last_a.values.iter().sum::<f32>() / last_a.values.len() as f32;
        let mean_s: f32 = last_s.values.iter().sum::<f32>() / last_s.values.len() as f32;
        // Both should sit near the boundary mean (225 K), far from the IC (400 K).
        assert!((mean_a - mean_s).abs() < 30.0, "means {mean_a} vs {mean_s}");
    }

    #[test]
    fn workload_reports_trajectory_bytes() {
        let w = SyntheticWorkload::analytic(config());
        assert_eq!(w.trajectory_bytes(), 8 * 8 * 4 * 6);
    }

    #[test]
    fn generate_respects_sink_ordering() {
        let w = SyntheticWorkload::analytic(config());
        let mut seen = Vec::new();
        w.generate(params(), |s| seen.push(s.step)).unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    fn seeded_values(w: &SyntheticWorkload, seed: u64) -> Vec<f32> {
        let mut out = Vec::new();
        Workload::generate_seeded(w, [400.0, 150.0, 200.0, 250.0, 300.0], seed, &mut |s| {
            out.extend(s.values)
        })
        .unwrap();
        out
    }

    #[test]
    fn noisy_attempts_differ_and_each_is_reproducible() {
        let w = SyntheticWorkload::noisy(config(), 2.0);
        assert_eq!(Workload::name(&w), "heat2d-noisy");
        let attempt0 = seeded_values(&w, 11);
        let attempt1 = seeded_values(&w, 12);
        assert_ne!(attempt0, attempt1, "different attempt seeds → fresh noise");
        assert_eq!(
            attempt0,
            seeded_values(&w, 11),
            "same seed replays bit-identically"
        );
        assert_eq!(attempt1, seeded_values(&w, 12));

        // The noise is bounded by the amplitude around the exact field.
        let clean = seeded_values(&SyntheticWorkload::analytic(config()), 11);
        for (noisy, exact) in attempt0.iter().zip(&clean) {
            assert!((noisy - exact).abs() <= 2.0 + 1e-4);
        }
    }

    #[test]
    fn noiseless_workloads_ignore_the_attempt_seed() {
        let w = SyntheticWorkload::analytic(config());
        assert_eq!(seeded_values(&w, 1), seeded_values(&w, 2));
    }

    #[test]
    fn negative_noise_amplitude_is_rejected() {
        let w = SyntheticWorkload::noisy(config(), -1.0);
        assert!(matches!(
            Workload::validate(&w),
            Err(WorkloadError::InvalidConfig(_))
        ));
        assert!(Workload::validate(&SyntheticWorkload::noisy(config(), 2.0)).is_ok());
    }
}
