//! Domain decomposition: the "MPI+X" layout of the paper's solver, on threads.
//!
//! The original solver is a Fortran90/MPI code with a classical 2D domain
//! partitioning; each client gathers the partitioned time step on rank zero
//! before streaming it to the training server. This module reproduces that
//! structure with a row-block decomposition across worker threads:
//!
//! * [`DomainDecomposition`] splits the grid into per-rank [`LocalBlock`]s and
//!   provides `scatter`/`gather` (the rank-0 gather of §3.2.2).
//! * [`AllReducer`] is a barrier-based sum all-reduce (the MPI_Allreduce stand-in)
//!   used by the distributed conjugate-gradient solver.
//! * [`DistributedImplicitSolver`] advances the field with implicit Euler where the
//!   CG iteration runs distributed: halo rows are exchanged through channels before
//!   every mat-vec and the CG dot products are all-reduced across ranks.
//!
//! The decomposition is deliberately deterministic: for a given grid, parameter
//! set and rank count the produced trajectory is identical to the single-rank
//! [`crate::ImplicitEuler`] trajectory up to solver tolerance.

use crate::boundary::BoundaryConditions;
use crate::grid::{Field, Grid2D};
use crate::linalg::dot;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Barrier;

/// The row-block owned by one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalBlock {
    /// Rank index in `[0, num_ranks)`.
    pub rank: usize,
    /// First grid row (y-index) owned by this rank.
    pub j_start: usize,
    /// Number of rows owned by this rank.
    pub j_count: usize,
    /// Number of columns (same for all ranks).
    pub nx: usize,
}

impl LocalBlock {
    /// Number of interior nodes owned by this rank.
    pub fn len(&self) -> usize {
        self.j_count * self.nx
    }

    /// True when the rank owns no rows (can happen when ranks > ny).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Row-block decomposition of a [`Grid2D`] over `num_ranks` ranks.
#[derive(Debug, Clone)]
pub struct DomainDecomposition {
    grid: Grid2D,
    blocks: Vec<LocalBlock>,
}

impl DomainDecomposition {
    /// Splits the grid rows as evenly as possible across `num_ranks` ranks.
    ///
    /// When `num_ranks` exceeds the number of rows the rank count is clamped so
    /// that no rank owns an empty block (an empty rank would have no halo rows
    /// to exchange, which real MPI decompositions also avoid).
    ///
    /// # Panics
    /// Panics when `num_ranks == 0`.
    pub fn rows(grid: Grid2D, num_ranks: usize) -> Self {
        assert!(num_ranks > 0, "need at least one rank");
        let num_ranks = num_ranks.min(grid.ny).max(1);
        let base = grid.ny / num_ranks;
        let extra = grid.ny % num_ranks;
        let mut blocks = Vec::with_capacity(num_ranks);
        let mut j = 0;
        for rank in 0..num_ranks {
            let count = base + usize::from(rank < extra);
            blocks.push(LocalBlock {
                rank,
                j_start: j,
                j_count: count,
                nx: grid.nx,
            });
            j += count;
        }
        debug_assert_eq!(j, grid.ny);
        Self { grid, blocks }
    }

    /// The decomposed grid.
    pub fn grid(&self) -> Grid2D {
        self.grid
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.blocks.len()
    }

    /// Block descriptor of a rank.
    pub fn block(&self, rank: usize) -> LocalBlock {
        self.blocks[rank]
    }

    /// All block descriptors.
    pub fn blocks(&self) -> &[LocalBlock] {
        &self.blocks
    }

    /// Splits a global field into per-rank row blocks (row-major slices).
    pub fn scatter(&self, field: &Field) -> Vec<Vec<f64>> {
        assert_eq!(field.grid(), self.grid, "field grid mismatch");
        let values = field.values();
        self.blocks
            .iter()
            .map(|b| {
                let start = b.j_start * b.nx;
                values[start..start + b.len()].to_vec()
            })
            .collect()
    }

    /// Reassembles per-rank row blocks into a global field (the rank-0 gather).
    ///
    /// # Panics
    /// Panics when the block sizes do not match the decomposition.
    pub fn gather(&self, blocks: &[Vec<f64>]) -> Field {
        assert_eq!(blocks.len(), self.blocks.len(), "rank count mismatch");
        let mut values = Vec::with_capacity(self.grid.len());
        for (desc, block) in self.blocks.iter().zip(blocks) {
            assert_eq!(block.len(), desc.len(), "block size mismatch");
            values.extend_from_slice(block);
        }
        Field::from_values(self.grid, values)
    }
}

/// Barrier-based sum all-reduce shared by all ranks of a distributed solve.
///
/// Each collective call performs three barrier phases (accumulate, read, reset)
/// so that consecutive reductions never race; this mirrors `MPI_Allreduce`
/// semantics closely enough for the SPMD solver loop.
pub struct AllReducer {
    barrier: Barrier,
    accumulator: Mutex<f64>,
}

impl AllReducer {
    /// Creates an all-reducer for `num_ranks` participants.
    pub fn new(num_ranks: usize) -> Self {
        Self {
            barrier: Barrier::new(num_ranks),
            accumulator: Mutex::new(0.0),
        }
    }

    /// Sums `local` across all ranks; every rank receives the global sum.
    ///
    /// Every rank must call this the same number of times in the same order.
    pub fn sum(&self, local: f64) -> f64 {
        *self.accumulator.lock() += local;
        self.barrier.wait();
        let result = *self.accumulator.lock();
        if self.barrier.wait().is_leader() {
            *self.accumulator.lock() = 0.0;
        }
        self.barrier.wait();
        result
    }

    /// Barrier without a reduction (used to order halo exchanges).
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// Per-rank halo communication endpoints (send to / receive from neighbours).
struct HaloLinks {
    to_south: Option<Sender<Vec<f64>>>,
    to_north: Option<Sender<Vec<f64>>>,
    from_south: Option<Receiver<Vec<f64>>>,
    from_north: Option<Receiver<Vec<f64>>>,
}

/// Builds the halo channel topology for `num_ranks` neighbouring row blocks.
fn build_halo_links(num_ranks: usize) -> Vec<HaloLinks> {
    let mut links: Vec<HaloLinks> = (0..num_ranks)
        .map(|_| HaloLinks {
            to_south: None,
            to_north: None,
            from_south: None,
            from_north: None,
        })
        .collect();
    for rank in 0..num_ranks.saturating_sub(1) {
        // Channel pair between rank (south) and rank+1 (north).
        let (tx_up, rx_up) = bounded(1); // rank -> rank+1
        let (tx_down, rx_down) = bounded(1); // rank+1 -> rank
        links[rank].to_north = Some(tx_up);
        links[rank + 1].from_south = Some(rx_up);
        links[rank + 1].to_south = Some(tx_down);
        links[rank].from_north = Some(rx_down);
    }
    links
}

/// One time step of a distributed run, gathered on rank zero.
#[derive(Debug, Clone)]
pub struct GatheredStep {
    /// Time-step index (0-based).
    pub step: usize,
    /// Gathered global field.
    pub field: Field,
    /// Total CG iterations spent on this step (summed over the solve).
    pub cg_iterations: usize,
}

/// Distributed implicit-Euler solver over a row-block decomposition.
#[derive(Debug, Clone, Copy)]
pub struct DistributedImplicitSolver {
    /// Thermal diffusivity `α`.
    pub alpha: f64,
    /// Time step `Δt`.
    pub dt: f64,
    /// Relative CG tolerance.
    pub tolerance: f64,
    /// Maximum CG iterations per time step.
    pub max_iterations: usize,
}

impl Default for DistributedImplicitSolver {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            dt: 0.01,
            tolerance: 1e-10,
            max_iterations: 10_000,
        }
    }
}

/// Per-rank state of the distributed CG solve.
struct RankState {
    block: LocalBlock,
    grid: Grid2D,
    /// Local solution rows.
    u: Vec<f64>,
    /// Halo row below the block (from the south neighbour or Dirichlet).
    halo_south: Vec<f64>,
    /// Halo row above the block (from the north neighbour or Dirichlet).
    halo_north: Vec<f64>,
}

impl DistributedImplicitSolver {
    /// Runs `steps` implicit-Euler time steps distributed over `num_ranks`
    /// worker threads, starting from `initial`, and returns every gathered step.
    pub fn run(
        &self,
        initial: &Field,
        bc: &BoundaryConditions,
        num_ranks: usize,
        steps: usize,
    ) -> Vec<GatheredStep> {
        let grid = initial.grid();
        let decomp = DomainDecomposition::rows(grid, num_ranks);
        let num_ranks = decomp.num_ranks();
        let scattered = decomp.scatter(initial);
        let reducer = AllReducer::new(num_ranks);
        let links = build_halo_links(num_ranks);
        // Gathered blocks for the current step, plus CG iteration counts.
        let gather_slots: Vec<Mutex<Option<Vec<f64>>>> =
            (0..num_ranks).map(|_| Mutex::new(None)).collect();
        let results: Mutex<Vec<GatheredStep>> = Mutex::new(Vec::with_capacity(steps));

        crossbeam::scope(|scope| {
            let mut link_iter = links.into_iter();
            for (rank, local) in scattered.into_iter().enumerate() {
                // analysis: allow(panic, reason = "build_halo_links returns exactly num_ranks link sets, one per spawned rank")
                let link = link_iter.next().expect("one link set per rank");
                let reducer = &reducer;
                let decomp = &decomp;
                let gather_slots = &gather_slots;
                let results = &results;
                let solver = *self;
                let bc = *bc;
                scope.spawn(move |_| {
                    solver.rank_loop(
                        rank,
                        decomp,
                        local,
                        bc,
                        link,
                        reducer,
                        gather_slots,
                        results,
                        steps,
                    );
                });
            }
        })
        // analysis: allow(panic, reason = "re-raises a rank thread's panic; a partial gather would silently corrupt the solution field")
        .expect("distributed solver worker panicked");

        let mut out = results.into_inner();
        out.sort_by_key(|s| s.step);
        out
    }

    /// The SPMD body executed by each rank.
    #[allow(clippy::too_many_arguments)]
    fn rank_loop(
        &self,
        rank: usize,
        decomp: &DomainDecomposition,
        local: Vec<f64>,
        bc: BoundaryConditions,
        link: HaloLinks,
        reducer: &AllReducer,
        gather_slots: &[Mutex<Option<Vec<f64>>>],
        results: &Mutex<Vec<GatheredStep>>,
        steps: usize,
    ) {
        let block = decomp.block(rank);
        let grid = decomp.grid();
        let nx = grid.nx;
        let mut state = RankState {
            block,
            grid,
            u: local,
            halo_south: vec![bc.south; nx],
            halo_north: vec![bc.north; nx],
        };

        for step in 0..steps {
            let iterations = self.distributed_step(&mut state, &bc, &link, reducer);

            // Rank-0 gather: every rank deposits its block, rank 0 assembles.
            *gather_slots[rank].lock() = Some(state.u.clone());
            reducer.barrier();
            if rank == 0 {
                let blocks: Vec<Vec<f64>> = gather_slots
                    .iter()
                    // analysis: allow(panic, reason = "the barrier above guarantees every rank deposited its block before rank 0 gathers")
                    .map(|slot| slot.lock().take().expect("block deposited"))
                    .collect();
                let field = decomp.gather(&blocks);
                results.lock().push(GatheredStep {
                    step,
                    field,
                    cg_iterations: iterations,
                });
            }
            reducer.barrier();
        }
    }

    /// One distributed implicit-Euler step; returns the CG iteration count.
    fn distributed_step(
        &self,
        state: &mut RankState,
        bc: &BoundaryConditions,
        link: &HaloLinks,
        reducer: &AllReducer,
    ) -> usize {
        let n = state.u.len();
        debug_assert!(n > 0, "empty ranks are clamped away by the decomposition");

        // Right-hand side: u^n + α Δt * Dirichlet contributions (global edges only).
        let rhs = self.local_rhs(state, bc);
        let norm_b2 = reducer.sum(dot(&rhs, &rhs));
        let norm_b = norm_b2.sqrt();
        if norm_b == 0.0 {
            state.u.iter_mut().for_each(|v| *v = 0.0);
            return 0;
        }
        let tol = self.tolerance * norm_b;

        // Warm start from u^n.
        let mut x = state.u.clone();
        let mut ax = vec![0.0; n];
        self.exchange_halos(&x, state, link, reducer);
        self.local_matvec(&x, state, &mut ax);
        let mut r: Vec<f64> = rhs.iter().zip(&ax).map(|(b, a)| b - a).collect();
        let mut p = r.clone();
        let mut rs_old = reducer.sum(dot(&r, &r));
        let mut iterations = 0;

        while rs_old.sqrt() > tol && iterations < self.max_iterations {
            self.exchange_halos(&p, state, link, reducer);
            let mut ap = vec![0.0; n];
            self.local_matvec(&p, state, &mut ap);
            let p_ap = reducer.sum(dot(&p, &ap));
            if p_ap == 0.0 {
                break;
            }
            let alpha = rs_old / p_ap;
            for k in 0..n {
                x[k] += alpha * p[k];
                r[k] -= alpha * ap[k];
            }
            let rs_new = reducer.sum(dot(&r, &r));
            let beta = rs_new / rs_old;
            for k in 0..n {
                p[k] = r[k] + beta * p[k];
            }
            rs_old = rs_new;
            iterations += 1;
        }

        state.u = x;
        iterations
    }

    /// Local right-hand side with Dirichlet boundary contributions.
    fn local_rhs(&self, state: &RankState, bc: &BoundaryConditions) -> Vec<f64> {
        let grid = state.grid;
        let block = state.block;
        let nx = grid.nx;
        let inv_dx2 = 1.0 / (grid.dx() * grid.dx());
        let inv_dy2 = 1.0 / (grid.dy() * grid.dy());
        let c = self.alpha * self.dt;
        let mut rhs = Vec::with_capacity(state.u.len());
        for local_j in 0..block.j_count {
            let global_j = block.j_start + local_j;
            for i in 0..nx {
                let k = local_j * nx + i;
                let mut contribution = 0.0;
                if i == 0 {
                    contribution += bc.west * inv_dx2;
                }
                if i + 1 == nx {
                    contribution += bc.east * inv_dx2;
                }
                if global_j == 0 {
                    contribution += bc.south * inv_dy2;
                }
                if global_j + 1 == grid.ny {
                    contribution += bc.north * inv_dy2;
                }
                rhs.push(state.u[k] + c * contribution);
            }
        }
        rhs
    }

    /// Exchanges halo rows of `v` with the neighbouring ranks.
    ///
    /// Rows adjacent to the global boundary keep a zero halo because the implicit
    /// operator uses homogeneous Dirichlet conditions (the inhomogeneous part
    /// lives in the right-hand side).
    fn exchange_halos(
        &self,
        v: &[f64],
        state: &mut RankState,
        link: &HaloLinks,
        reducer: &AllReducer,
    ) {
        let nx = state.grid.nx;
        let rows = state.block.j_count;
        // Send own edge rows first (bounded(1) channels never block here because
        // each direction carries exactly one message per exchange).
        if let Some(tx) = &link.to_south {
            // analysis: allow(panic, reason = "a closed halo channel means the neighbour rank panicked; propagating keeps ranks in lock-step")
            tx.send(v[0..nx].to_vec()).expect("south neighbour alive");
        }
        if let Some(tx) = &link.to_north {
            tx.send(v[(rows - 1) * nx..rows * nx].to_vec())
                // analysis: allow(panic, reason = "a closed halo channel means the neighbour rank panicked; propagating keeps ranks in lock-step")
                .expect("north neighbour alive");
        }
        if let Some(rx) = &link.from_south {
            // analysis: allow(panic, reason = "a closed halo channel means the neighbour rank panicked; propagating keeps ranks in lock-step")
            state.halo_south = rx.recv().expect("south halo row");
        } else {
            state.halo_south.iter_mut().for_each(|h| *h = 0.0);
        }
        if let Some(rx) = &link.from_north {
            // analysis: allow(panic, reason = "a closed halo channel means the neighbour rank panicked; propagating keeps ranks in lock-step")
            state.halo_north = rx.recv().expect("north halo row");
        } else {
            state.halo_north.iter_mut().for_each(|h| *h = 0.0);
        }
        // Keep every rank in lock-step so reductions stay ordered.
        reducer.barrier();
    }

    /// Local part of `A·v` using the freshly exchanged halos.
    fn local_matvec(&self, v: &[f64], state: &RankState, out: &mut [f64]) {
        let grid = state.grid;
        let nx = grid.nx;
        let rows = state.block.j_count;
        let inv_dx2 = 1.0 / (grid.dx() * grid.dx());
        let inv_dy2 = 1.0 / (grid.dy() * grid.dy());
        let c = self.alpha * self.dt;
        let diag = 1.0 + 2.0 * c * (inv_dx2 + inv_dy2);
        for j in 0..rows {
            for i in 0..nx {
                let k = j * nx + i;
                let mut acc = diag * v[k];
                if i > 0 {
                    acc -= c * inv_dx2 * v[k - 1];
                }
                if i + 1 < nx {
                    acc -= c * inv_dx2 * v[k + 1];
                }
                let south = if j > 0 {
                    v[k - nx]
                } else {
                    state.halo_south[i]
                };
                let north = if j + 1 < rows {
                    v[k + nx]
                } else {
                    state.halo_north[i]
                };
                acc -= c * inv_dy2 * south;
                acc -= c * inv_dy2 * north;
                out[k] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{ImplicitEuler, TimeScheme};

    #[test]
    fn decomposition_covers_all_rows() {
        let grid = Grid2D::unit_square(8, 13);
        for ranks in 1..=6 {
            let d = DomainDecomposition::rows(grid, ranks);
            let total: usize = d.blocks().iter().map(|b| b.j_count).sum();
            assert_eq!(total, 13);
            // Blocks are contiguous and ordered.
            let mut next = 0;
            for b in d.blocks() {
                assert_eq!(b.j_start, next);
                next += b.j_count;
            }
        }
    }

    #[test]
    fn decomposition_balances_rows() {
        let grid = Grid2D::unit_square(4, 10);
        let d = DomainDecomposition::rows(grid, 4);
        let counts: Vec<usize> = d.blocks().iter().map(|b| b.j_count).collect();
        assert_eq!(
            counts.iter().max().unwrap() - counts.iter().min().unwrap(),
            1
        );
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let grid = Grid2D::unit_square(5, 7);
        let field = Field::from_fn(grid, |x, y| 100.0 * x + y);
        for ranks in [1, 2, 3, 7] {
            let d = DomainDecomposition::rows(grid, ranks);
            let blocks = d.scatter(&field);
            let gathered = d.gather(&blocks);
            assert_eq!(gathered, field);
        }
    }

    #[test]
    fn allreducer_sums_across_threads() {
        let reducer = AllReducer::new(4);
        let results = Mutex::new(Vec::new());
        crossbeam::scope(|s| {
            for rank in 0..4 {
                let reducer = &reducer;
                let results = &results;
                s.spawn(move |_| {
                    // Two consecutive reductions exercise the reset logic.
                    let a = reducer.sum(rank as f64 + 1.0);
                    let b = reducer.sum((rank as f64 + 1.0) * 10.0);
                    results.lock().push((a, b));
                });
            }
        })
        .unwrap();
        for (a, b) in results.into_inner() {
            assert_eq!(a, 10.0);
            assert_eq!(b, 100.0);
        }
    }

    #[test]
    fn distributed_matches_single_rank_reference() {
        let grid = Grid2D::unit_square(10, 11);
        let bc = BoundaryConditions {
            west: 120.0,
            east: 480.0,
            south: 300.0,
            north: 210.0,
        };
        let initial = Field::constant(grid, 333.0);
        let steps = 4;

        // Reference: the shared-memory implicit Euler scheme.
        let mut reference = initial.clone();
        let scheme = ImplicitEuler::new(1.0, 0.01);
        let mut reference_steps = Vec::new();
        for _ in 0..steps {
            scheme.step(&mut reference, &bc);
            reference_steps.push(reference.clone());
        }

        for ranks in [1, 2, 3, 4] {
            let solver = DistributedImplicitSolver::default();
            let gathered = solver.run(&initial, &bc, ranks, steps);
            assert_eq!(gathered.len(), steps);
            for (g, r) in gathered.iter().zip(&reference_steps) {
                let rms = g.field.rms_diff(r);
                assert!(rms < 1e-6, "ranks={ranks} step={} rms={rms}", g.step);
            }
        }
    }

    #[test]
    fn distributed_handles_more_ranks_than_rows() {
        let grid = Grid2D::unit_square(6, 3);
        let bc = BoundaryConditions::uniform(250.0);
        let initial = Field::constant(grid, 400.0);
        let solver = DistributedImplicitSolver::default();
        let gathered = solver.run(&initial, &bc, 5, 2);
        assert_eq!(gathered.len(), 2);
        for g in &gathered {
            assert!(g.field.is_finite());
            assert!(g.field.max() <= 400.0 + 1e-9);
            assert!(g.field.min() >= 250.0 - 1e-9);
        }
    }

    #[test]
    fn gathered_steps_are_ordered() {
        let grid = Grid2D::unit_square(6, 6);
        let bc = BoundaryConditions::uniform(300.0);
        let initial = Field::constant(grid, 100.0);
        let solver = DistributedImplicitSolver::default();
        let gathered = solver.run(&initial, &bc, 3, 5);
        let steps: Vec<usize> = gathered.iter().map(|g| g.step).collect();
        assert_eq!(steps, vec![0, 1, 2, 3, 4]);
    }
}
