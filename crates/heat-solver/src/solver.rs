//! High-level solver driver: from sampled parameters to streamed time steps.
//!
//! [`HeatSolver`] plays the role of one ensemble *client* executable: it runs a
//! full trajectory of the heat equation for one parameter draw `X` and emits one
//! [`TimeStepField`] per time step, already gathered and converted to `f32` — the
//! exact payload the paper's clients send to the training server through the
//! Melissa API.

use crate::boundary::BoundaryConditions;
use crate::decomposition::DistributedImplicitSolver;
use crate::grid::{Field, Grid2D};
use crate::params::SimulationParams;
use crate::scheme::{AdiScheme, ExplicitEuler, ImplicitEuler, TimeScheme};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which time integrator the solver uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchemeKind {
    /// Backward Euler with a conjugate-gradient solve (the paper's scheme).
    #[default]
    ImplicitEuler,
    /// Forward Euler (cheap, conditionally stable).
    ExplicitEuler,
    /// Peaceman–Rachford ADI (cheap, unconditionally stable).
    Adi,
}

/// Configuration of one solver run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Interior nodes along x (the paper used 1000).
    pub nx: usize,
    /// Interior nodes along y (the paper used 1000).
    pub ny: usize,
    /// Physical domain length along x.
    pub lx: f64,
    /// Physical domain length along y.
    pub ly: f64,
    /// Thermal diffusivity `α` (paper: 1 m²/s).
    pub alpha: f64,
    /// Time step `Δt` (paper: 0.01 s).
    pub dt: f64,
    /// Number of time steps per trajectory (paper: 100).
    pub steps: usize,
    /// Time integrator.
    pub scheme: SchemeKind,
    /// Relative tolerance of the CG solve (implicit scheme only).
    pub cg_tolerance: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            nx: 32,
            ny: 32,
            lx: 1.0,
            ly: 1.0,
            alpha: 1.0,
            dt: 0.01,
            steps: 100,
            scheme: SchemeKind::ImplicitEuler,
            cg_tolerance: 1e-8,
        }
    }
}

impl SolverConfig {
    /// Configuration matching the paper's large runs (1000×1000 × 100 steps).
    /// Only used for documentation and cost estimates — far too large for tests.
    pub fn paper_scale() -> Self {
        Self {
            nx: 1000,
            ny: 1000,
            ..Self::default()
        }
    }

    /// The grid described by this configuration.
    pub fn grid(&self) -> Grid2D {
        Grid2D::rectangle(self.nx, self.ny, self.lx, self.ly)
    }

    /// Number of values in one emitted time step.
    pub fn field_len(&self) -> usize {
        self.nx * self.ny
    }

    /// Size in bytes of one emitted (f32) time step.
    pub fn step_bytes(&self) -> usize {
        self.field_len() * std::mem::size_of::<f32>()
    }

    /// Size in bytes of one full trajectory.
    pub fn trajectory_bytes(&self) -> usize {
        self.step_bytes() * self.steps
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), SolverError> {
        if self.nx == 0 || self.ny == 0 {
            return Err(SolverError::InvalidConfig("grid must be non-empty".into()));
        }
        if self.steps == 0 {
            return Err(SolverError::InvalidConfig(
                "at least one time step is required".into(),
            ));
        }
        if self.dt <= 0.0 || self.dt.is_nan() || self.alpha <= 0.0 || self.alpha.is_nan() {
            return Err(SolverError::InvalidConfig(
                "dt and alpha must be positive".into(),
            ));
        }
        if self.lx <= 0.0 || self.lx.is_nan() || self.ly <= 0.0 || self.ly.is_nan() {
            return Err(SolverError::InvalidConfig(
                "domain lengths must be positive".into(),
            ));
        }
        if self.scheme == SchemeKind::ExplicitEuler {
            let grid = self.grid();
            let explicit = ExplicitEuler::new(self.alpha, self.dt);
            if !explicit.is_stable(&grid) {
                return Err(SolverError::UnstableExplicitScheme {
                    stability_number: explicit.stability_number(&grid),
                });
            }
        }
        Ok(())
    }
}

/// Errors produced by the solver driver.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// The configuration is inconsistent.
    InvalidConfig(String),
    /// The explicit scheme would be unstable on the requested grid.
    UnstableExplicitScheme {
        /// The offending stability number (must be ≤ 0.5).
        stability_number: f64,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::InvalidConfig(msg) => write!(f, "invalid solver configuration: {msg}"),
            SolverError::UnstableExplicitScheme { stability_number } => write!(
                f,
                "explicit Euler unstable: stability number {stability_number:.3} > 0.5"
            ),
        }
    }
}

impl std::error::Error for SolverError {}

/// One gathered, down-converted time step — the unit of data streamed to the
/// training server (one training sample together with its input `(X, t)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeStepField {
    /// Zero-based time-step index.
    pub step: usize,
    /// Physical time `t = (step + 1) · Δt`.
    pub time: f64,
    /// The parameters `X` of the trajectory this step belongs to.
    pub params: SimulationParams,
    /// Interior nodes along x.
    pub nx: usize,
    /// Interior nodes along y.
    pub ny: usize,
    /// Gathered field values, row-major, converted to `f32`.
    pub values: Vec<f32>,
}

impl TimeStepField {
    /// The surrogate input vector `(X, t)` as `f32` (6 entries, as in the paper).
    pub fn input_vector(&self) -> Vec<f32> {
        let mut v = self.params.as_f32_vector().to_vec();
        v.push(self.time as f32);
        v
    }

    /// Size of the payload in bytes (excluding metadata).
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>()
    }
}

/// Driver running one trajectory of the heat equation for one parameter draw.
#[derive(Debug, Clone)]
pub struct HeatSolver {
    config: SolverConfig,
    params: SimulationParams,
}

impl HeatSolver {
    /// Creates a solver after validating the configuration.
    pub fn new(config: SolverConfig, params: SimulationParams) -> Result<Self, SolverError> {
        config.validate()?;
        Ok(Self { config, params })
    }

    /// The configuration of this solver.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// The sampled parameters of this trajectory.
    pub fn params(&self) -> &SimulationParams {
        &self.params
    }

    fn make_scheme(&self) -> Box<dyn TimeScheme> {
        match self.config.scheme {
            SchemeKind::ImplicitEuler => {
                let mut scheme = ImplicitEuler::new(self.config.alpha, self.config.dt);
                scheme.cg.tolerance = self.config.cg_tolerance;
                Box::new(scheme)
            }
            SchemeKind::ExplicitEuler => {
                Box::new(ExplicitEuler::new(self.config.alpha, self.config.dt))
            }
            SchemeKind::Adi => Box::new(AdiScheme::new(self.config.alpha, self.config.dt)),
        }
    }

    /// Runs the full trajectory, returning an iterator over the emitted steps.
    ///
    /// The iterator is lazy: each `next()` advances the simulation by one step,
    /// which lets callers interleave solving and streaming exactly like the
    /// instrumented clients of the paper.
    pub fn run(&self) -> Result<TrajectoryIter, SolverError> {
        self.config.validate()?;
        let grid = self.config.grid();
        let field = Field::constant(grid, self.params.t_initial);
        Ok(TrajectoryIter {
            scheme: self.make_scheme(),
            bc: BoundaryConditions::from_params(&self.params),
            field,
            config: self.config,
            params: self.params,
            next_step: 0,
        })
    }

    /// Runs the full trajectory, pushing every step into `sink`.
    pub fn run_with_sink(&self, mut sink: impl FnMut(TimeStepField)) -> Result<(), SolverError> {
        for step in self.run()? {
            sink(step);
        }
        Ok(())
    }

    /// Runs the full trajectory eagerly and returns all steps.
    pub fn trajectory(&self) -> Result<Vec<TimeStepField>, SolverError> {
        Ok(self.run()?.collect())
    }

    /// Runs the trajectory with the implicit scheme distributed over
    /// `num_ranks` worker threads (the "MPI+X parallel client" of the paper)
    /// and returns all gathered steps.
    pub fn trajectory_distributed(
        &self,
        num_ranks: usize,
    ) -> Result<Vec<TimeStepField>, SolverError> {
        self.config.validate()?;
        let grid = self.config.grid();
        let initial = Field::constant(grid, self.params.t_initial);
        let bc = BoundaryConditions::from_params(&self.params);
        let solver = DistributedImplicitSolver {
            alpha: self.config.alpha,
            dt: self.config.dt,
            tolerance: self.config.cg_tolerance,
            max_iterations: 10_000,
        };
        let gathered = solver.run(&initial, &bc, num_ranks, self.config.steps);
        Ok(gathered
            .into_iter()
            .map(|g| TimeStepField {
                step: g.step,
                time: (g.step as f64 + 1.0) * self.config.dt,
                params: self.params,
                nx: self.config.nx,
                ny: self.config.ny,
                values: g.field.to_f32(),
            })
            .collect())
    }
}

/// Lazy iterator over the time steps of one trajectory.
pub struct TrajectoryIter {
    scheme: Box<dyn TimeScheme>,
    bc: BoundaryConditions,
    field: Field,
    config: SolverConfig,
    params: SimulationParams,
    next_step: usize,
}

impl Iterator for TrajectoryIter {
    type Item = TimeStepField;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_step >= self.config.steps {
            return None;
        }
        self.scheme.step(&mut self.field, &self.bc);
        let step = self.next_step;
        self.next_step += 1;
        Some(TimeStepField {
            step,
            time: (step as f64 + 1.0) * self.config.dt,
            params: self.params,
            nx: self.config.nx,
            ny: self.config.ny,
            values: self.field.to_f32(),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.config.steps - self.next_step;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for TrajectoryIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SimulationParams {
        SimulationParams::new([350.0, 150.0, 250.0, 450.0, 200.0])
    }

    fn small_config(scheme: SchemeKind) -> SolverConfig {
        SolverConfig {
            nx: 12,
            ny: 12,
            steps: 8,
            scheme,
            // Small enough for explicit Euler stability on a 12×12 grid.
            dt: 0.001,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let c = SolverConfig {
            nx: 0,
            ..Default::default()
        };
        assert!(matches!(c.validate(), Err(SolverError::InvalidConfig(_))));
        let c = SolverConfig {
            dt: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SolverConfig {
            steps: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_unstable_explicit() {
        let c = SolverConfig {
            scheme: SchemeKind::ExplicitEuler,
            nx: 64,
            ny: 64,
            dt: 0.01,
            ..SolverConfig::default()
        };
        match c.validate() {
            Err(SolverError::UnstableExplicitScheme { stability_number }) => {
                assert!(stability_number > 0.5)
            }
            other => panic!("expected instability error, got {other:?}"),
        }
    }

    #[test]
    fn trajectory_has_expected_length_and_times() {
        let solver = HeatSolver::new(small_config(SchemeKind::Adi), params()).unwrap();
        let steps = solver.trajectory().unwrap();
        assert_eq!(steps.len(), 8);
        for (k, s) in steps.iter().enumerate() {
            assert_eq!(s.step, k);
            assert!((s.time - (k as f64 + 1.0) * 0.001).abs() < 1e-12);
            assert_eq!(s.values.len(), 144);
        }
    }

    #[test]
    fn iterator_is_lazy_and_exact_size() {
        let solver = HeatSolver::new(small_config(SchemeKind::ImplicitEuler), params()).unwrap();
        let mut iter = solver.run().unwrap();
        assert_eq!(iter.len(), 8);
        let first = iter.next().unwrap();
        assert_eq!(first.step, 0);
        assert_eq!(iter.len(), 7);
    }

    #[test]
    fn input_vector_has_six_entries() {
        let solver = HeatSolver::new(small_config(SchemeKind::Adi), params()).unwrap();
        let step = solver.run().unwrap().next().unwrap();
        let input = step.input_vector();
        assert_eq!(input.len(), 6);
        assert_eq!(input[0], 350.0);
        assert!((input[5] - 0.001).abs() < 1e-6);
    }

    #[test]
    fn all_schemes_stay_within_physical_bounds() {
        for scheme in [
            SchemeKind::ImplicitEuler,
            SchemeKind::ExplicitEuler,
            SchemeKind::Adi,
        ] {
            let solver = HeatSolver::new(small_config(scheme), params()).unwrap();
            let steps = solver.trajectory().unwrap();
            for s in steps {
                for &v in &s.values {
                    assert!(v.is_finite());
                    assert!((150.0..=450.0).contains(&(v as f64 + 1e-3)) || v >= 150.0 - 1.0);
                    assert!(
                        (149.0..=451.0).contains(&v),
                        "value {v} out of physical range"
                    );
                }
            }
        }
    }

    #[test]
    fn distributed_trajectory_matches_shared_memory() {
        let config = SolverConfig {
            nx: 10,
            ny: 10,
            steps: 4,
            ..SolverConfig::default()
        };
        let solver = HeatSolver::new(config, params()).unwrap();
        let reference = solver.trajectory().unwrap();
        let distributed = solver.trajectory_distributed(3).unwrap();
        assert_eq!(reference.len(), distributed.len());
        for (a, b) in reference.iter().zip(&distributed) {
            assert_eq!(a.step, b.step);
            let max_diff = a
                .values
                .iter()
                .zip(&b.values)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 1e-3, "step {} diff {max_diff}", a.step);
        }
    }

    #[test]
    fn run_with_sink_collects_all_steps() {
        let solver = HeatSolver::new(small_config(SchemeKind::Adi), params()).unwrap();
        let mut count = 0;
        solver.run_with_sink(|_| count += 1).unwrap();
        assert_eq!(count, 8);
    }

    #[test]
    fn config_size_accounting() {
        let c = SolverConfig {
            nx: 100,
            ny: 100,
            steps: 10,
            ..SolverConfig::default()
        };
        assert_eq!(c.field_len(), 10_000);
        assert_eq!(c.step_bytes(), 40_000);
        assert_eq!(c.trajectory_bytes(), 400_000);
    }

    #[test]
    fn paper_scale_config_matches_paper_numbers() {
        let c = SolverConfig::paper_scale();
        assert_eq!(c.nx, 1000);
        assert_eq!(c.ny, 1000);
        assert_eq!(c.steps, 100);
        // One sample is a 1M-value field: 4 MB in f32.
        assert_eq!(c.step_bytes(), 4_000_000);
    }
}
