//! Dirichlet boundary conditions of the heat problem.
//!
//! Equation 2 of the paper imposes constant temperatures on the four edges of
//! the rectangular domain and a constant initial temperature. This module turns
//! a [`SimulationParams`] into the boundary contributions entering the
//! finite-difference stencils.

use crate::grid::Grid2D;
use crate::params::SimulationParams;
use serde::{Deserialize, Serialize};

/// The four constant Dirichlet boundary temperatures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundaryConditions {
    /// Temperature on the `x = 0` edge (`T_x1`).
    pub west: f64,
    /// Temperature on the `x = L` edge (`T_x2`).
    pub east: f64,
    /// Temperature on the `y = 0` edge (`T_y1`).
    pub south: f64,
    /// Temperature on the `y = L` edge (`T_y2`).
    pub north: f64,
}

impl BoundaryConditions {
    /// Extracts the boundary temperatures from the sampled parameters.
    pub fn from_params(params: &SimulationParams) -> Self {
        Self {
            west: params.t_x1,
            east: params.t_x2,
            south: params.t_y1,
            north: params.t_y2,
        }
    }

    /// Uniform boundary (all four edges at the same temperature).
    pub fn uniform(value: f64) -> Self {
        Self {
            west: value,
            east: value,
            south: value,
            north: value,
        }
    }

    /// Mean of the four edge temperatures.
    pub fn mean(&self) -> f64 {
        (self.west + self.east + self.south + self.north) / 4.0
    }

    /// The boundary temperature seen by the interior node `(i, j)` through its
    /// *west* neighbour, or `None` when that neighbour is interior.
    #[inline]
    pub fn west_of(&self, i: usize) -> Option<f64> {
        (i == 0).then_some(self.west)
    }

    /// The boundary temperature seen through the *east* neighbour.
    #[inline]
    pub fn east_of(&self, i: usize, grid: &Grid2D) -> Option<f64> {
        (i + 1 == grid.nx).then_some(self.east)
    }

    /// The boundary temperature seen through the *south* neighbour.
    #[inline]
    pub fn south_of(&self, j: usize) -> Option<f64> {
        (j == 0).then_some(self.south)
    }

    /// The boundary temperature seen through the *north* neighbour.
    #[inline]
    pub fn north_of(&self, j: usize, grid: &Grid2D) -> Option<f64> {
        (j + 1 == grid.ny).then_some(self.north)
    }

    /// Sum of the boundary contributions entering the 5-point Laplacian at node
    /// `(i, j)`, weighted by the inverse squared spacings.
    ///
    /// For a node adjacent to one or more edges, the discrete Laplacian reads
    /// `(T_w + T_e - 2T)/dx² + (T_s + T_n - 2T)/dy²` where off-grid neighbours
    /// take the Dirichlet value. This function returns the sum of those
    /// off-grid Dirichlet terms divided by the appropriate `dx²`/`dy²`.
    pub fn laplacian_contribution(&self, grid: &Grid2D, i: usize, j: usize) -> f64 {
        let inv_dx2 = 1.0 / (grid.dx() * grid.dx());
        let inv_dy2 = 1.0 / (grid.dy() * grid.dy());
        let mut acc = 0.0;
        if let Some(t) = self.west_of(i) {
            acc += t * inv_dx2;
        }
        if let Some(t) = self.east_of(i, grid) {
            acc += t * inv_dx2;
        }
        if let Some(t) = self.south_of(j) {
            acc += t * inv_dy2;
        }
        if let Some(t) = self.north_of(j, grid) {
            acc += t * inv_dy2;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SimulationParams {
        SimulationParams::new([300.0, 110.0, 120.0, 130.0, 140.0])
    }

    #[test]
    fn from_params_maps_edges() {
        let bc = BoundaryConditions::from_params(&params());
        assert_eq!(bc.west, 110.0);
        assert_eq!(bc.south, 120.0);
        assert_eq!(bc.east, 130.0);
        assert_eq!(bc.north, 140.0);
        assert!((bc.mean() - 125.0).abs() < 1e-12);
    }

    #[test]
    fn edge_detection() {
        let grid = Grid2D::unit_square(4, 3);
        let bc = BoundaryConditions::from_params(&params());
        assert_eq!(bc.west_of(0), Some(110.0));
        assert_eq!(bc.west_of(1), None);
        assert_eq!(bc.east_of(3, &grid), Some(130.0));
        assert_eq!(bc.east_of(2, &grid), None);
        assert_eq!(bc.south_of(0), Some(120.0));
        assert_eq!(bc.north_of(2, &grid), Some(140.0));
        assert_eq!(bc.north_of(1, &grid), None);
    }

    #[test]
    fn interior_node_has_no_contribution() {
        let grid = Grid2D::unit_square(5, 5);
        let bc = BoundaryConditions::from_params(&params());
        assert_eq!(bc.laplacian_contribution(&grid, 2, 2), 0.0);
    }

    #[test]
    fn corner_node_sees_two_edges() {
        let grid = Grid2D::unit_square(3, 3);
        let bc = BoundaryConditions::uniform(200.0);
        let inv_dx2 = 1.0 / (grid.dx() * grid.dx());
        let inv_dy2 = 1.0 / (grid.dy() * grid.dy());
        let c = bc.laplacian_contribution(&grid, 0, 0);
        assert!((c - 200.0 * (inv_dx2 + inv_dy2)).abs() < 1e-9);
    }

    #[test]
    fn uniform_boundary_mean() {
        let bc = BoundaryConditions::uniform(321.0);
        assert_eq!(bc.mean(), 321.0);
    }
}
