//! Linear algebra kernels for the implicit time integrators.
//!
//! The implicit Euler step of the heat equation requires solving the sparse,
//! symmetric positive-definite system `(I - α Δt L) u^{n+1} = u^n + α Δt b`
//! where `L` is the 5-point discrete Laplacian restricted to interior nodes and
//! `b` gathers the Dirichlet boundary contributions. This module implements the
//! matrix-free operator, a preconditioner-free [`ConjugateGradient`] solver, a
//! [`JacobiSolver`] baseline, and the [`ThomasSolver`] (tridiagonal) used by the
//! ADI scheme.

use crate::grid::Grid2D;

/// Matrix-free application of the implicit heat operator `A = I - α Δt L`.
///
/// `L` is the standard 5-point Laplacian with homogeneous Dirichlet conditions
/// (the inhomogeneous boundary values are moved to the right-hand side).
#[derive(Debug, Clone, Copy)]
pub struct HeatOperator {
    /// Grid the operator is defined on.
    pub grid: Grid2D,
    /// Thermal diffusivity `α`.
    pub alpha: f64,
    /// Time step `Δt`.
    pub dt: f64,
}

impl HeatOperator {
    /// Creates the operator.
    pub fn new(grid: Grid2D, alpha: f64, dt: f64) -> Self {
        Self { grid, alpha, dt }
    }

    /// `out = A · v`. Both slices must have `grid.len()` entries.
    pub fn apply(&self, v: &[f64], out: &mut [f64]) {
        let grid = self.grid;
        debug_assert_eq!(v.len(), grid.len());
        debug_assert_eq!(out.len(), grid.len());
        let nx = grid.nx;
        let ny = grid.ny;
        let inv_dx2 = 1.0 / (grid.dx() * grid.dx());
        let inv_dy2 = 1.0 / (grid.dy() * grid.dy());
        let c = self.alpha * self.dt;
        let diag = 1.0 + 2.0 * c * (inv_dx2 + inv_dy2);
        for j in 0..ny {
            let row = j * nx;
            for i in 0..nx {
                let k = row + i;
                let mut acc = diag * v[k];
                if i > 0 {
                    acc -= c * inv_dx2 * v[k - 1];
                }
                if i + 1 < nx {
                    acc -= c * inv_dx2 * v[k + 1];
                }
                if j > 0 {
                    acc -= c * inv_dy2 * v[k - nx];
                }
                if j + 1 < ny {
                    acc -= c * inv_dy2 * v[k + nx];
                }
                out[k] = acc;
            }
        }
    }

    /// Diagonal entry of `A` (constant over the grid), used by Jacobi.
    pub fn diagonal(&self) -> f64 {
        let inv_dx2 = 1.0 / (self.grid.dx() * self.grid.dx());
        let inv_dy2 = 1.0 / (self.grid.dy() * self.grid.dy());
        1.0 + 2.0 * self.alpha * self.dt * (inv_dx2 + inv_dy2)
    }
}

/// Convergence report of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgReport {
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Whether the tolerance was reached before hitting the iteration cap.
    pub converged: bool,
}

/// Conjugate-gradient solver for the SPD implicit heat system.
#[derive(Debug, Clone, Copy)]
pub struct ConjugateGradient {
    /// Relative residual tolerance (‖r‖ / ‖b‖).
    pub tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
}

impl Default for ConjugateGradient {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iterations: 10_000,
        }
    }
}

impl ConjugateGradient {
    /// Creates a solver with the given tolerance and iteration cap.
    pub fn new(tolerance: f64, max_iterations: usize) -> Self {
        Self {
            tolerance,
            max_iterations,
        }
    }

    /// Solves `A x = b` in place, starting from the provided `x` (warm start).
    pub fn solve(&self, op: &HeatOperator, b: &[f64], x: &mut [f64]) -> CgReport {
        let n = b.len();
        debug_assert_eq!(x.len(), n);
        let norm_b = dot(b, b).sqrt();
        if norm_b == 0.0 {
            x.iter_mut().for_each(|v| *v = 0.0);
            return CgReport {
                iterations: 0,
                residual: 0.0,
                converged: true,
            };
        }
        let tol = self.tolerance * norm_b;

        let mut ax = vec![0.0; n];
        op.apply(x, &mut ax);
        let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let mut p = r.clone();
        let mut rs_old = dot(&r, &r);
        if rs_old.sqrt() <= tol {
            return CgReport {
                iterations: 0,
                residual: rs_old.sqrt(),
                converged: true,
            };
        }
        let mut ap = vec![0.0; n];
        for iter in 1..=self.max_iterations {
            op.apply(&p, &mut ap);
            let p_ap = dot(&p, &ap);
            if p_ap == 0.0 {
                return CgReport {
                    iterations: iter,
                    residual: rs_old.sqrt(),
                    converged: false,
                };
            }
            let alpha = rs_old / p_ap;
            for k in 0..n {
                x[k] += alpha * p[k];
                r[k] -= alpha * ap[k];
            }
            let rs_new = dot(&r, &r);
            if rs_new.sqrt() <= tol {
                return CgReport {
                    iterations: iter,
                    residual: rs_new.sqrt(),
                    converged: true,
                };
            }
            let beta = rs_new / rs_old;
            for k in 0..n {
                p[k] = r[k] + beta * p[k];
            }
            rs_old = rs_new;
        }
        CgReport {
            iterations: self.max_iterations,
            residual: rs_old.sqrt(),
            converged: false,
        }
    }
}

/// Weighted Jacobi iterative solver — a slower baseline kept for testing the
/// matrix-free operator and for ablation of the linear-solver choice.
#[derive(Debug, Clone, Copy)]
pub struct JacobiSolver {
    /// Relative residual tolerance.
    pub tolerance: f64,
    /// Maximum number of sweeps.
    pub max_iterations: usize,
    /// Damping factor (1.0 = plain Jacobi; 2/3 is a common smoothing choice).
    pub omega: f64,
}

impl Default for JacobiSolver {
    fn default() -> Self {
        Self {
            tolerance: 1e-8,
            max_iterations: 50_000,
            omega: 1.0,
        }
    }
}

impl JacobiSolver {
    /// Solves `A x = b` in place with damped Jacobi sweeps.
    pub fn solve(&self, op: &HeatOperator, b: &[f64], x: &mut [f64]) -> CgReport {
        let n = b.len();
        let norm_b = dot(b, b).sqrt();
        if norm_b == 0.0 {
            x.iter_mut().for_each(|v| *v = 0.0);
            return CgReport {
                iterations: 0,
                residual: 0.0,
                converged: true,
            };
        }
        let tol = self.tolerance * norm_b;
        let diag = op.diagonal();
        let mut ax = vec![0.0; n];
        for iter in 1..=self.max_iterations {
            op.apply(x, &mut ax);
            let mut res2 = 0.0;
            for k in 0..n {
                let r = b[k] - ax[k];
                res2 += r * r;
                x[k] += self.omega * r / diag;
            }
            if res2.sqrt() <= tol {
                return CgReport {
                    iterations: iter,
                    residual: res2.sqrt(),
                    converged: true,
                };
            }
        }
        op.apply(x, &mut ax);
        let res = b
            .iter()
            .zip(&ax)
            .map(|(bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt();
        CgReport {
            iterations: self.max_iterations,
            residual: res,
            converged: false,
        }
    }
}

/// Thomas algorithm for tridiagonal systems, used by the ADI scheme.
///
/// Solves a system with constant sub-/super-diagonal `off` and constant
/// diagonal `diag` (the structure arising from 1D implicit heat steps).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThomasSolver;

impl ThomasSolver {
    /// Solves the constant-coefficient tridiagonal system in place.
    ///
    /// `rhs` holds the right-hand side on input and the solution on output.
    /// `scratch` must have the same length and is used for the forward sweep.
    pub fn solve_constant(&self, diag: f64, off: f64, rhs: &mut [f64], scratch: &mut [f64]) {
        let n = rhs.len();
        if n == 0 {
            return;
        }
        debug_assert_eq!(scratch.len(), n);
        // Forward elimination.
        scratch[0] = off / diag;
        rhs[0] /= diag;
        for k in 1..n {
            let m = diag - off * scratch[k - 1];
            scratch[k] = off / m;
            rhs[k] = (rhs[k] - off * rhs[k - 1]) / m;
        }
        // Back substitution.
        for k in (0..n - 1).rev() {
            rhs[k] -= scratch[k] * rhs[k + 1];
        }
    }

    /// Solves a general tridiagonal system `lower/diag/upper` in place.
    pub fn solve_general(
        &self,
        lower: &[f64],
        diag: &[f64],
        upper: &[f64],
        rhs: &mut [f64],
        scratch: &mut [f64],
    ) {
        let n = rhs.len();
        if n == 0 {
            return;
        }
        debug_assert_eq!(lower.len(), n);
        debug_assert_eq!(diag.len(), n);
        debug_assert_eq!(upper.len(), n);
        debug_assert_eq!(scratch.len(), n);
        scratch[0] = upper[0] / diag[0];
        rhs[0] /= diag[0];
        for k in 1..n {
            let m = diag[k] - lower[k] * scratch[k - 1];
            scratch[k] = upper[k] / m;
            rhs[k] = (rhs[k] - lower[k] * rhs[k - 1]) / m;
        }
        for k in (0..n - 1).rev() {
            rhs[k] -= scratch[k] * rhs[k + 1];
        }
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (BLAS axpy).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2D;

    fn op(n: usize) -> HeatOperator {
        HeatOperator::new(Grid2D::unit_square(n, n), 1.0, 0.01)
    }

    #[test]
    fn operator_is_symmetric() {
        let op = op(6);
        let n = op.grid.len();
        // Check <Av, w> == <v, Aw> for a few random-ish vectors.
        let v: Vec<f64> = (0..n).map(|k| ((k * 7 + 3) % 11) as f64 - 5.0).collect();
        let w: Vec<f64> = (0..n).map(|k| ((k * 13 + 1) % 17) as f64 - 8.0).collect();
        let mut av = vec![0.0; n];
        let mut aw = vec![0.0; n];
        op.apply(&v, &mut av);
        op.apply(&w, &mut aw);
        assert!((dot(&av, &w) - dot(&v, &aw)).abs() < 1e-8);
    }

    #[test]
    fn operator_is_positive_definite_on_samples() {
        let op = op(5);
        let n = op.grid.len();
        for seed in 0..5u64 {
            let v: Vec<f64> = (0..n)
                .map(|k| (((k as u64 + seed * 31) * 2654435761) % 1000) as f64 / 500.0 - 1.0)
                .collect();
            if v.iter().all(|&x| x == 0.0) {
                continue;
            }
            let mut av = vec![0.0; n];
            op.apply(&v, &mut av);
            assert!(dot(&v, &av) > 0.0);
        }
    }

    #[test]
    fn cg_solves_manufactured_system() {
        let op = op(8);
        let n = op.grid.len();
        let x_true: Vec<f64> = (0..n).map(|k| (k as f64 * 0.37).sin()).collect();
        let mut b = vec![0.0; n];
        op.apply(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let report = ConjugateGradient::default().solve(&op, &b, &mut x);
        assert!(report.converged, "CG failed: {report:?}");
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "error too large: {err}");
    }

    #[test]
    fn cg_zero_rhs_gives_zero_solution() {
        let op = op(4);
        let n = op.grid.len();
        let b = vec![0.0; n];
        let mut x = vec![1.0; n];
        let report = ConjugateGradient::default().solve(&op, &b, &mut x);
        assert!(report.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cg_warm_start_converges_immediately_on_exact_guess() {
        let op = op(6);
        let n = op.grid.len();
        let x_true: Vec<f64> = (0..n).map(|k| k as f64).collect();
        let mut b = vec![0.0; n];
        op.apply(&x_true, &mut b);
        let mut x = x_true.clone();
        let report = ConjugateGradient::default().solve(&op, &b, &mut x);
        assert_eq!(report.iterations, 0);
        assert!(report.converged);
    }

    #[test]
    fn jacobi_matches_cg_solution() {
        let op = op(6);
        let n = op.grid.len();
        let b: Vec<f64> = (0..n).map(|k| ((k % 7) as f64) - 3.0).collect();
        let mut x_cg = vec![0.0; n];
        let mut x_j = vec![0.0; n];
        assert!(
            ConjugateGradient::default()
                .solve(&op, &b, &mut x_cg)
                .converged
        );
        assert!(JacobiSolver::default().solve(&op, &b, &mut x_j).converged);
        for k in 0..n {
            assert!((x_cg[k] - x_j[k]).abs() < 1e-5);
        }
    }

    #[test]
    fn thomas_constant_solves_small_system() {
        // System: diag 2, off -1, n=3 -> matrix [[2,-1,0],[-1,2,-1],[0,-1,2]]
        let mut rhs = vec![1.0, 0.0, 1.0];
        let mut scratch = vec![0.0; 3];
        ThomasSolver.solve_constant(2.0, -1.0, &mut rhs, &mut scratch);
        // Exact solution is [1, 1, 1].
        for v in &rhs {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn thomas_general_matches_constant() {
        let n = 10;
        let diag_val = 3.0;
        let off_val = -0.7;
        let rhs0: Vec<f64> = (0..n).map(|k| (k as f64 * 0.9).cos()).collect();

        let mut rhs_a = rhs0.clone();
        let mut scratch = vec![0.0; n];
        ThomasSolver.solve_constant(diag_val, off_val, &mut rhs_a, &mut scratch);

        let mut rhs_b = rhs0;
        let lower = vec![off_val; n];
        let diag = vec![diag_val; n];
        let upper = vec![off_val; n];
        let mut scratch_b = vec![0.0; n];
        ThomasSolver.solve_general(&lower, &diag, &upper, &mut rhs_b, &mut scratch_b);

        for k in 0..n {
            assert!((rhs_a[k] - rhs_b[k]).abs() < 1e-10);
        }
    }

    #[test]
    fn axpy_and_dot_basics() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        assert_eq!(dot(&x, &x), 14.0);
    }
}
