//! # heat-solver
//!
//! A 2D heat-equation solver reproducing the data-generation substrate of
//! *"High Throughput Training of Deep Surrogates from Large Ensemble Runs"* (SC'23).
//!
//! The paper trains a deep surrogate of an in-house Fortran90/MPI finite-difference
//! solver of the classical heat equation on a rectangular domain (Equation 2 of the
//! paper): implicit Euler time integration, 2D Cartesian grid, Dirichlet boundary
//! conditions given by four boundary temperatures and one initial temperature.
//!
//! This crate provides:
//!
//! * [`Grid2D`] / [`Field`] — the discretised domain and temperature fields.
//! * [`SimulationParams`] — the five sampled temperatures `(T_ic, T_x1, T_y1, T_x2, T_y2)`
//!   plus physical and numerical configuration, mirroring the paper's input vector `X`.
//! * Time-integration schemes: [`ImplicitEuler`] (conjugate-gradient linear solves, the
//!   scheme used in the paper), [`ExplicitEuler`] and [`AdiScheme`] (alternating-direction
//!   implicit, Thomas algorithm) as cheaper baselines.
//! * [`DomainDecomposition`] — block partitioning of the grid over a configurable number
//!   of worker "ranks" with halo exchange and a rank-0 gather, mimicking the MPI+X layout
//!   of the original solver. Workers run on OS threads via `crossbeam::scope`.
//! * [`HeatSolver`] — the high-level driver producing one [`TimeStepField`] per time step,
//!   already gathered and down-converted to `f32` exactly as the paper's clients do before
//!   streaming data to the training server.
//!
//! The grid resolution is configurable; the paper used 1000×1000 × 100 time steps, the
//! tests and benches here default to much smaller grids so the whole ensemble fits on a
//! single node (see `DESIGN.md` for the substitution rationale).

pub mod analytic;
pub mod boundary;
pub mod decomposition;
pub mod grid;
pub mod linalg;
pub mod params;
pub mod scheme;
pub mod solver;
pub mod workload;

pub use boundary::BoundaryConditions;
pub use decomposition::{
    AllReducer, DistributedImplicitSolver, DomainDecomposition, GatheredStep, LocalBlock,
};
pub use grid::{Field, Grid2D};
pub use linalg::{CgReport, ConjugateGradient, JacobiSolver, ThomasSolver};
pub use params::{ParamPoint, ParamRange, ParameterSpace, SimulationParams, PARAM_DIM};
pub use scheme::{AdiScheme, ExplicitEuler, ImplicitEuler, TimeScheme};
pub use solver::{HeatSolver, SolverConfig, SolverError, TimeStepField};
pub use workload::{SyntheticWorkload, WorkloadKind};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_smoke_run() {
        let params = SimulationParams::new([300.0, 200.0, 250.0, 350.0, 400.0]);
        let config = SolverConfig {
            nx: 16,
            ny: 16,
            steps: 5,
            ..SolverConfig::default()
        };
        let solver = HeatSolver::new(config, params).expect("valid config");
        let steps: Vec<_> = solver.run().expect("solver runs").collect();
        assert_eq!(steps.len(), 5);
        for s in &steps {
            assert_eq!(s.values.len(), 16 * 16);
            assert!(s.values.iter().all(|v| v.is_finite()));
        }
    }
}
