//! Analytic and semi-analytic reference solutions used to validate the solver.
//!
//! Two families of references are provided:
//!
//! * **Discrete sine modes.** With homogeneous Dirichlet boundaries, the grid
//!   function `sin(kx π x / lx) · sin(ky π y / ly)` is an exact eigenvector of
//!   the 5-point discrete Laplacian, so implicit/explicit Euler must damp it by
//!   an exactly known factor per step. This gives machine-precision tests of the
//!   time integrators.
//! * **Steady states.** For constant Dirichlet boundaries the solution converges
//!   to the solution of the Laplace equation; [`steady_state`] computes it by
//!   driving the implicit scheme with large time steps, and
//!   [`bilinear_boundary_blend`] provides a cheap closed-form approximation used
//!   by the synthetic workload generator.

use crate::boundary::BoundaryConditions;
use crate::grid::{Field, Grid2D};
use crate::scheme::{ImplicitEuler, TimeScheme};
use std::f64::consts::PI;

/// The discrete sine mode `sin(kx π x / lx) · sin(ky π y / ly)` on the grid.
pub fn sine_mode(grid: Grid2D, kx: usize, ky: usize) -> Field {
    Field::from_fn(grid, |x, y| {
        (kx as f64 * PI * x / grid.lx).sin() * (ky as f64 * PI * y / grid.ly).sin()
    })
}

/// Exact eigenvalue of the (negated) 5-point discrete Laplacian for mode `(kx, ky)`.
///
/// The mode satisfies `-L_h u = λ u` with
/// `λ = 2/dx² (1 - cos(kx π dx / lx)) + 2/dy² (1 - cos(ky π dy / ly))`.
pub fn discrete_laplacian_eigenvalue(grid: Grid2D, kx: usize, ky: usize) -> f64 {
    let dx = grid.dx();
    let dy = grid.dy();
    let lx = 2.0 / (dx * dx) * (1.0 - (kx as f64 * PI * dx / grid.lx).cos());
    let ly = 2.0 / (dy * dy) * (1.0 - (ky as f64 * PI * dy / grid.ly).cos());
    lx + ly
}

/// Per-step damping factor of implicit Euler on an eigenmode with eigenvalue `lambda`.
pub fn implicit_decay_factor(alpha: f64, dt: f64, lambda: f64) -> f64 {
    1.0 / (1.0 + alpha * dt * lambda)
}

/// Per-step damping factor of explicit Euler on an eigenmode with eigenvalue `lambda`.
pub fn explicit_decay_factor(alpha: f64, dt: f64, lambda: f64) -> f64 {
    1.0 - alpha * dt * lambda
}

/// Continuous-equation eigenvalue of mode `(kx, ky)` (for discretisation-error studies).
pub fn continuous_eigenvalue(grid: Grid2D, kx: usize, ky: usize) -> f64 {
    let wx = kx as f64 * PI / grid.lx;
    let wy = ky as f64 * PI / grid.ly;
    wx * wx + wy * wy
}

/// Steady-state solution of the Dirichlet problem computed by driving the
/// implicit scheme with a large time step until the update stalls.
pub fn steady_state(grid: Grid2D, bc: &BoundaryConditions, tolerance: f64) -> Field {
    let mut field = Field::constant(grid, bc.mean());
    // A large Δt makes each implicit step close to a direct Laplace solve.
    let scheme = ImplicitEuler::new(1.0, 1.0e3);
    let mut previous = field.clone();
    for _ in 0..200 {
        scheme.step(&mut field, bc);
        if field.rms_diff(&previous) < tolerance {
            break;
        }
        previous = field.clone();
    }
    field
}

/// Closed-form boundary blend used as a cheap stand-in for the steady state:
/// a distance-weighted average of the four edge temperatures.
pub fn bilinear_boundary_blend(grid: Grid2D, bc: &BoundaryConditions, x: f64, y: f64) -> f64 {
    let tx = x / grid.lx;
    let ty = y / grid.ly;
    // Inverse-distance-like weights to each edge; edges further away count less.
    let ww = (1.0 - tx).max(0.0);
    let we = tx.max(0.0);
    let ws = (1.0 - ty).max(0.0);
    let wn = ty.max(0.0);
    let total = ww + we + ws + wn;
    (bc.west * ww + bc.east * we + bc.south * ws + bc.north * wn) / total
}

/// Cheap closed-form approximation of the transient solution used by the
/// synthetic workload: the boundary blend plus an exponentially decaying
/// contribution of the initial condition (first-mode decay rate).
pub fn approximate_transient(
    grid: Grid2D,
    bc: &BoundaryConditions,
    t_initial: f64,
    alpha: f64,
    time: f64,
    x: f64,
    y: f64,
) -> f64 {
    let steady = bilinear_boundary_blend(grid, bc, x, y);
    let lambda = continuous_eigenvalue(grid, 1, 1);
    let shape = (PI * x / grid.lx).sin() * (PI * y / grid.ly).sin();
    steady + (t_initial - steady) * shape * (-alpha * lambda * time).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ExplicitEuler;

    #[test]
    fn sine_mode_vanishes_near_boundary_symmetrically() {
        let grid = Grid2D::unit_square(15, 15);
        let mode = sine_mode(grid, 1, 1);
        // Symmetric about the centre.
        assert!((mode.get(0, 0) - mode.get(14, 14)).abs() < 1e-12);
        // Positive in the interior for the fundamental mode.
        assert!(mode.values().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn implicit_euler_damps_eigenmode_exactly() {
        let grid = Grid2D::unit_square(12, 12);
        let bc = BoundaryConditions::uniform(0.0);
        let alpha = 1.0;
        let dt = 0.01;
        let lambda = discrete_laplacian_eigenvalue(grid, 1, 1);
        let factor = implicit_decay_factor(alpha, dt, lambda);

        let mode = sine_mode(grid, 1, 1);
        let mut field = mode.clone();
        let scheme = ImplicitEuler::new(alpha, dt);
        let steps = 5;
        for _ in 0..steps {
            scheme.step(&mut field, &bc);
        }
        let expected_scale = factor.powi(steps);
        let expected = Field::from_values(
            grid,
            mode.values().iter().map(|v| v * expected_scale).collect(),
        );
        assert!(
            field.rms_diff(&expected) < 1e-7,
            "rms {}",
            field.rms_diff(&expected)
        );
    }

    #[test]
    fn explicit_euler_damps_eigenmode_exactly() {
        let grid = Grid2D::unit_square(10, 10);
        let bc = BoundaryConditions::uniform(0.0);
        let alpha = 1.0;
        let dt = ExplicitEuler::max_stable_dt(alpha, &grid) * 0.5;
        let lambda = discrete_laplacian_eigenvalue(grid, 2, 1);
        let factor = explicit_decay_factor(alpha, dt, lambda);

        let mode = sine_mode(grid, 2, 1);
        let mut field = mode.clone();
        let scheme = ExplicitEuler::new(alpha, dt);
        scheme.step(&mut field, &bc);
        let expected = Field::from_values(grid, mode.values().iter().map(|v| v * factor).collect());
        assert!(field.rms_diff(&expected) < 1e-10);
    }

    #[test]
    fn discrete_eigenvalue_approaches_continuous_with_resolution() {
        let coarse = Grid2D::unit_square(8, 8);
        let fine = Grid2D::unit_square(64, 64);
        let exact = continuous_eigenvalue(fine, 1, 1);
        let err_coarse = (discrete_laplacian_eigenvalue(coarse, 1, 1) - exact).abs();
        let err_fine = (discrete_laplacian_eigenvalue(fine, 1, 1) - exact).abs();
        assert!(err_fine < err_coarse);
    }

    #[test]
    fn steady_state_with_uniform_boundary_is_constant() {
        let grid = Grid2D::unit_square(8, 8);
        let bc = BoundaryConditions::uniform(321.0);
        let ss = steady_state(grid, &bc, 1e-10);
        assert!((ss.min() - 321.0).abs() < 1e-6);
        assert!((ss.max() - 321.0).abs() < 1e-6);
    }

    #[test]
    fn steady_state_is_bounded_by_boundary_extremes() {
        let grid = Grid2D::unit_square(10, 10);
        let bc = BoundaryConditions {
            west: 100.0,
            east: 500.0,
            south: 200.0,
            north: 400.0,
        };
        let ss = steady_state(grid, &bc, 1e-9);
        assert!(ss.min() >= 100.0 - 1e-6);
        assert!(ss.max() <= 500.0 + 1e-6);
    }

    #[test]
    fn boundary_blend_interpolates_edges() {
        let grid = Grid2D::unit_square(10, 10);
        let bc = BoundaryConditions {
            west: 100.0,
            east: 300.0,
            south: 200.0,
            north: 200.0,
        };
        let near_west = bilinear_boundary_blend(grid, &bc, 0.01, 0.5);
        let near_east = bilinear_boundary_blend(grid, &bc, 0.99, 0.5);
        assert!(near_west < near_east);
        let centre = bilinear_boundary_blend(grid, &bc, 0.5, 0.5);
        assert!((centre - 200.0).abs() < 1.0);
    }

    #[test]
    fn approximate_transient_converges_to_blend() {
        let grid = Grid2D::unit_square(10, 10);
        let bc = BoundaryConditions {
            west: 150.0,
            east: 250.0,
            south: 180.0,
            north: 220.0,
        };
        let early = approximate_transient(grid, &bc, 500.0, 1.0, 0.0, 0.5, 0.5);
        let late = approximate_transient(grid, &bc, 500.0, 1.0, 100.0, 0.5, 0.5);
        let blend = bilinear_boundary_blend(grid, &bc, 0.5, 0.5);
        assert!((late - blend).abs() < 1e-6);
        assert!(early > late, "initial condition should dominate early on");
    }
}
