//! Simulation parameters and the sampled parameter space.
//!
//! The paper's input vector `X` holds five temperatures: the initial condition
//! `T_ic` and the four Dirichlet boundary temperatures `(T_x1, T_y1, T_x2, T_y2)`,
//! each sampled uniformly in `[100, 500]` K. The thermal diffusivity is fixed to
//! `α = 1 m²/s`, the time step to `Δt = 0.01 s` and the trajectory length to 100
//! steps. Everything is configurable here so the ensemble can be scaled down.

use serde::{Deserialize, Serialize};

/// Number of sampled input parameters (the dimension of `X` in the paper).
pub const PARAM_DIM: usize = 5;

/// Default lower bound of the sampled temperature range (Kelvin).
pub const DEFAULT_T_MIN: f64 = 100.0;
/// Default upper bound of the sampled temperature range (Kelvin).
pub const DEFAULT_T_MAX: f64 = 500.0;

/// The five sampled temperatures of one ensemble member.
///
/// Order matches the paper: `[T_ic, T_x1, T_y1, T_x2, T_y2]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationParams {
    /// Initial temperature of the whole domain.
    pub t_initial: f64,
    /// Dirichlet temperature on the `x = 0` boundary.
    pub t_x1: f64,
    /// Dirichlet temperature on the `y = 0` boundary.
    pub t_y1: f64,
    /// Dirichlet temperature on the `x = L` boundary.
    pub t_x2: f64,
    /// Dirichlet temperature on the `y = L` boundary.
    pub t_y2: f64,
}

impl SimulationParams {
    /// Builds parameters from the `[T_ic, T_x1, T_y1, T_x2, T_y2]` vector.
    pub fn new(x: [f64; PARAM_DIM]) -> Self {
        Self {
            t_initial: x[0],
            t_x1: x[1],
            t_y1: x[2],
            t_x2: x[3],
            t_y2: x[4],
        }
    }

    /// Returns the parameters as the flat vector `X` used as surrogate input.
    pub fn as_vector(&self) -> [f64; PARAM_DIM] {
        [self.t_initial, self.t_x1, self.t_y1, self.t_x2, self.t_y2]
    }

    /// Returns the parameters as `f32`, the precision used for training inputs.
    pub fn as_f32_vector(&self) -> [f32; PARAM_DIM] {
        let v = self.as_vector();
        [
            v[0] as f32,
            v[1] as f32,
            v[2] as f32,
            v[3] as f32,
            v[4] as f32,
        ]
    }

    /// Mean of the four boundary temperatures — the steady-state mean temperature
    /// the solution converges towards, useful for sanity checks.
    pub fn boundary_mean(&self) -> f64 {
        (self.t_x1 + self.t_x2 + self.t_y1 + self.t_y2) / 4.0
    }

    /// Smallest of the five temperatures.
    pub fn min_temperature(&self) -> f64 {
        self.as_vector().into_iter().fold(f64::INFINITY, f64::min)
    }

    /// Largest of the five temperatures.
    pub fn max_temperature(&self) -> f64 {
        self.as_vector()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// True when every temperature lies in the given inclusive range.
    pub fn within_range(&self, range: &ParamRange) -> bool {
        self.as_vector()
            .into_iter()
            .all(|t| t >= range.min && t <= range.max)
    }
}

/// The inclusive range each temperature is sampled from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamRange {
    /// Lower bound (inclusive).
    pub min: f64,
    /// Upper bound (inclusive).
    pub max: f64,
}

impl Default for ParamRange {
    fn default() -> Self {
        Self {
            min: DEFAULT_T_MIN,
            max: DEFAULT_T_MAX,
        }
    }
}

impl ParamRange {
    /// Creates a range, panicking when `min > max`.
    pub fn new(min: f64, max: f64) -> Self {
        assert!(min <= max, "invalid parameter range: {min} > {max}");
        Self { min, max }
    }

    /// Width of the range.
    pub fn span(&self) -> f64 {
        self.max - self.min
    }

    /// Maps a unit-interval coordinate `u ∈ [0, 1]` into the range.
    pub fn lerp(&self, u: f64) -> f64 {
        self.min + u.clamp(0.0, 1.0) * self.span()
    }

    /// Maps a value of the range back to the unit interval.
    pub fn normalize(&self, value: f64) -> f64 {
        if self.span() == 0.0 {
            0.0
        } else {
            ((value - self.min) / self.span()).clamp(0.0, 1.0)
        }
    }
}

/// The sampled parameter space: one [`ParamRange`] per input dimension.
///
/// Experimental-design samplers in `melissa-ensemble` draw unit hypercube points
/// and map them through this space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParameterSpace {
    /// Per-dimension ranges, ordered as `[T_ic, T_x1, T_y1, T_x2, T_y2]`.
    pub ranges: [ParamRange; PARAM_DIM],
}

impl Default for ParameterSpace {
    fn default() -> Self {
        Self {
            ranges: [ParamRange::default(); PARAM_DIM],
        }
    }
}

impl ParameterSpace {
    /// A space where every dimension shares the same range.
    pub fn uniform(range: ParamRange) -> Self {
        Self {
            ranges: [range; PARAM_DIM],
        }
    }

    /// Maps a unit hypercube point into a [`SimulationParams`].
    pub fn from_unit(&self, u: [f64; PARAM_DIM]) -> SimulationParams {
        let mut x = [0.0; PARAM_DIM];
        for (k, (range, coord)) in self.ranges.iter().zip(u.iter()).enumerate() {
            x[k] = range.lerp(*coord);
        }
        SimulationParams::new(x)
    }

    /// Maps a parameter vector back to the unit hypercube.
    pub fn to_unit(&self, params: &SimulationParams) -> [f64; PARAM_DIM] {
        let x = params.as_vector();
        let mut u = [0.0; PARAM_DIM];
        for k in 0..PARAM_DIM {
            u[k] = self.ranges[k].normalize(x[k]);
        }
        u
    }

    /// True when the parameters lie inside the space.
    pub fn contains(&self, params: &SimulationParams) -> bool {
        let x = params.as_vector();
        self.ranges
            .iter()
            .zip(x.iter())
            .all(|(r, v)| *v >= r.min && *v <= r.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_vector_roundtrip() {
        let x = [300.0, 150.0, 200.0, 450.0, 100.0];
        let p = SimulationParams::new(x);
        assert_eq!(p.as_vector(), x);
        assert_eq!(p.t_initial, 300.0);
        assert_eq!(p.t_y2, 100.0);
    }

    #[test]
    fn params_boundary_mean_and_extrema() {
        let p = SimulationParams::new([300.0, 100.0, 200.0, 300.0, 400.0]);
        assert!((p.boundary_mean() - 250.0).abs() < 1e-12);
        assert_eq!(p.min_temperature(), 100.0);
        assert_eq!(p.max_temperature(), 400.0);
    }

    #[test]
    fn range_lerp_and_normalize_are_inverse() {
        let r = ParamRange::new(100.0, 500.0);
        for &u in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = r.lerp(u);
            assert!((r.normalize(v) - u).abs() < 1e-12);
        }
    }

    #[test]
    fn range_lerp_clamps() {
        let r = ParamRange::new(0.0, 10.0);
        assert_eq!(r.lerp(-1.0), 0.0);
        assert_eq!(r.lerp(2.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "invalid parameter range")]
    fn range_rejects_inverted_bounds() {
        let _ = ParamRange::new(10.0, 0.0);
    }

    #[test]
    fn space_unit_mapping_roundtrip() {
        let space = ParameterSpace::default();
        let u = [0.1, 0.2, 0.3, 0.4, 0.5];
        let p = space.from_unit(u);
        assert!(space.contains(&p));
        let back = space.to_unit(&p);
        for k in 0..PARAM_DIM {
            assert!((back[k] - u[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn default_space_matches_paper_range() {
        let space = ParameterSpace::default();
        let low = space.from_unit([0.0; PARAM_DIM]);
        let high = space.from_unit([1.0; PARAM_DIM]);
        assert_eq!(low.min_temperature(), 100.0);
        assert_eq!(high.max_temperature(), 500.0);
    }

    #[test]
    fn params_within_range_detects_outliers() {
        let r = ParamRange::default();
        let inside = SimulationParams::new([100.0, 200.0, 300.0, 400.0, 500.0]);
        let outside = SimulationParams::new([99.0, 200.0, 300.0, 400.0, 500.0]);
        assert!(inside.within_range(&r));
        assert!(!outside.within_range(&r));
    }
}
