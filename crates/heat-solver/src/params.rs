//! Simulation parameters of the heat-equation workload.
//!
//! The paper's input vector `X` holds five temperatures: the initial condition
//! `T_ic` and the four Dirichlet boundary temperatures `(T_x1, T_y1, T_x2, T_y2)`,
//! each sampled uniformly in `[100, 500]` K. The thermal diffusivity is fixed to
//! `α = 1 m²/s`, the time step to `Δt = 0.01 s` and the trajectory length to 100
//! steps. Everything is configurable here so the ensemble can be scaled down.
//!
//! The physics-agnostic parameter-space machinery ([`ParamRange`],
//! [`ParameterSpace`], [`PARAM_DIM`]) lives in `melissa_workload` and is
//! re-exported here; [`SimulationParams`] is the heat-specific view of one
//! sampled [`ParamPoint`].

use serde::{Deserialize, Serialize};

pub use melissa_workload::{ParamPoint, ParamRange, ParameterSpace, PARAM_DIM};

/// Default lower bound of the sampled temperature range (Kelvin).
pub const DEFAULT_T_MIN: f64 = 100.0;
/// Default upper bound of the sampled temperature range (Kelvin).
pub const DEFAULT_T_MAX: f64 = 500.0;

/// The five sampled temperatures of one ensemble member.
///
/// Order matches the paper: `[T_ic, T_x1, T_y1, T_x2, T_y2]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationParams {
    /// Initial temperature of the whole domain.
    pub t_initial: f64,
    /// Dirichlet temperature on the `x = 0` boundary.
    pub t_x1: f64,
    /// Dirichlet temperature on the `y = 0` boundary.
    pub t_y1: f64,
    /// Dirichlet temperature on the `x = L` boundary.
    pub t_x2: f64,
    /// Dirichlet temperature on the `y = L` boundary.
    pub t_y2: f64,
}

impl SimulationParams {
    /// Builds parameters from the `[T_ic, T_x1, T_y1, T_x2, T_y2]` vector.
    pub fn new(x: ParamPoint) -> Self {
        Self {
            t_initial: x[0],
            t_x1: x[1],
            t_y1: x[2],
            t_x2: x[3],
            t_y2: x[4],
        }
    }

    /// Returns the parameters as the flat vector `X` used as surrogate input.
    pub fn as_vector(&self) -> ParamPoint {
        [self.t_initial, self.t_x1, self.t_y1, self.t_x2, self.t_y2]
    }

    /// Returns the parameters as `f32`, the precision used for training inputs.
    pub fn as_f32_vector(&self) -> [f32; PARAM_DIM] {
        let v = self.as_vector();
        [
            v[0] as f32,
            v[1] as f32,
            v[2] as f32,
            v[3] as f32,
            v[4] as f32,
        ]
    }

    /// Mean of the four boundary temperatures — the steady-state mean temperature
    /// the solution converges towards, useful for sanity checks.
    pub fn boundary_mean(&self) -> f64 {
        (self.t_x1 + self.t_x2 + self.t_y1 + self.t_y2) / 4.0
    }

    /// Smallest of the five temperatures.
    pub fn min_temperature(&self) -> f64 {
        self.as_vector().into_iter().fold(f64::INFINITY, f64::min)
    }

    /// Largest of the five temperatures.
    pub fn max_temperature(&self) -> f64 {
        self.as_vector()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// True when every temperature lies in the given inclusive range.
    pub fn within_range(&self, range: &ParamRange) -> bool {
        self.as_vector()
            .into_iter()
            .all(|t| t >= range.min && t <= range.max)
    }
}

impl From<ParamPoint> for SimulationParams {
    fn from(x: ParamPoint) -> Self {
        Self::new(x)
    }
}

impl From<SimulationParams> for ParamPoint {
    fn from(p: SimulationParams) -> Self {
        p.as_vector()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_vector_roundtrip() {
        let x = [300.0, 150.0, 200.0, 450.0, 100.0];
        let p = SimulationParams::new(x);
        assert_eq!(p.as_vector(), x);
        assert_eq!(p.t_initial, 300.0);
        assert_eq!(p.t_y2, 100.0);
        assert_eq!(SimulationParams::from(x), p);
        assert_eq!(ParamPoint::from(p), x);
    }

    #[test]
    fn params_boundary_mean_and_extrema() {
        let p = SimulationParams::new([300.0, 100.0, 200.0, 300.0, 400.0]);
        assert!((p.boundary_mean() - 250.0).abs() < 1e-12);
        assert_eq!(p.min_temperature(), 100.0);
        assert_eq!(p.max_temperature(), 400.0);
    }

    #[test]
    fn default_space_matches_paper_range() {
        let space = ParameterSpace::default();
        let low = SimulationParams::new(space.from_unit([0.0; PARAM_DIM]));
        let high = SimulationParams::new(space.from_unit([1.0; PARAM_DIM]));
        assert_eq!(low.min_temperature(), DEFAULT_T_MIN);
        assert_eq!(high.max_temperature(), DEFAULT_T_MAX);
    }

    #[test]
    fn params_within_range_detects_outliers() {
        let r = ParamRange::default();
        let inside = SimulationParams::new([100.0, 200.0, 300.0, 400.0, 500.0]);
        let outside = SimulationParams::new([99.0, 200.0, 300.0, 400.0, 500.0]);
        assert!(inside.within_range(&r));
        assert!(!outside.within_range(&r));
    }
}
