//! Time-integration schemes for the heat equation.
//!
//! The paper's solver uses an implicit Euler scheme; [`ImplicitEuler`] reproduces
//! it with a matrix-free conjugate-gradient solve per step. [`ExplicitEuler`] and
//! [`AdiScheme`] (Peaceman–Rachford alternating-direction implicit) are cheaper
//! alternatives used for cross-validation and for generating large synthetic
//! ensembles quickly in tests and benchmarks.

use crate::boundary::BoundaryConditions;
use crate::grid::{Field, Grid2D};
use crate::linalg::{CgReport, ConjugateGradient, HeatOperator, ThomasSolver};

/// A single-step time integrator advancing the temperature field by `Δt`.
pub trait TimeScheme: Send + Sync {
    /// Advances `field` in place by one time step.
    fn step(&self, field: &mut Field, bc: &BoundaryConditions);

    /// Human-readable scheme name (used in reports).
    fn name(&self) -> &'static str;
}

/// Backward (implicit) Euler: unconditionally stable, one SPD solve per step.
#[derive(Debug, Clone, Copy)]
pub struct ImplicitEuler {
    /// Thermal diffusivity `α`.
    pub alpha: f64,
    /// Time step `Δt`.
    pub dt: f64,
    /// Linear solver configuration.
    pub cg: ConjugateGradient,
}

impl ImplicitEuler {
    /// Creates the scheme with the default CG tolerance.
    pub fn new(alpha: f64, dt: f64) -> Self {
        Self {
            alpha,
            dt,
            cg: ConjugateGradient::default(),
        }
    }

    /// Advances the field and returns the CG convergence report for the step.
    pub fn step_with_report(&self, field: &mut Field, bc: &BoundaryConditions) -> CgReport {
        let grid = field.grid();
        let op = HeatOperator::new(grid, self.alpha, self.dt);
        let rhs = build_rhs(&grid, field.values(), bc, self.alpha, self.dt);
        // Warm start from the current field: the solution changes little per step.
        let report = self.cg.solve(&op, &rhs, field.values_mut());
        report
    }
}

impl TimeScheme for ImplicitEuler {
    fn step(&self, field: &mut Field, bc: &BoundaryConditions) {
        let report = self.step_with_report(field, bc);
        debug_assert!(
            report.converged,
            "implicit Euler CG solve did not converge: {report:?}"
        );
    }

    fn name(&self) -> &'static str {
        "implicit-euler-cg"
    }
}

/// Right-hand side of the implicit system: `u^n + α Δt b` with `b` the Dirichlet
/// boundary contribution of the 5-point Laplacian.
fn build_rhs(grid: &Grid2D, u: &[f64], bc: &BoundaryConditions, alpha: f64, dt: f64) -> Vec<f64> {
    let mut rhs = Vec::with_capacity(grid.len());
    let c = alpha * dt;
    for j in 0..grid.ny {
        for i in 0..grid.nx {
            let k = grid.idx(i, j);
            rhs.push(u[k] + c * bc.laplacian_contribution(grid, i, j));
        }
    }
    rhs
}

/// Forward (explicit) Euler: conditionally stable
/// (`α Δt (1/dx² + 1/dy²) ≤ 1/2`), no linear solve.
#[derive(Debug, Clone, Copy)]
pub struct ExplicitEuler {
    /// Thermal diffusivity `α`.
    pub alpha: f64,
    /// Time step `Δt`.
    pub dt: f64,
}

impl ExplicitEuler {
    /// Creates the scheme.
    pub fn new(alpha: f64, dt: f64) -> Self {
        Self { alpha, dt }
    }

    /// Stability number `α Δt (1/dx² + 1/dy²)`; must be ≤ 0.5 for stability.
    pub fn stability_number(&self, grid: &Grid2D) -> f64 {
        let inv_dx2 = 1.0 / (grid.dx() * grid.dx());
        let inv_dy2 = 1.0 / (grid.dy() * grid.dy());
        self.alpha * self.dt * (inv_dx2 + inv_dy2)
    }

    /// True when the scheme is stable on the given grid.
    pub fn is_stable(&self, grid: &Grid2D) -> bool {
        self.stability_number(grid) <= 0.5 + 1e-12
    }

    /// Largest stable time step on the given grid.
    pub fn max_stable_dt(alpha: f64, grid: &Grid2D) -> f64 {
        let inv_dx2 = 1.0 / (grid.dx() * grid.dx());
        let inv_dy2 = 1.0 / (grid.dy() * grid.dy());
        0.5 / (alpha * (inv_dx2 + inv_dy2))
    }
}

impl TimeScheme for ExplicitEuler {
    fn step(&self, field: &mut Field, bc: &BoundaryConditions) {
        let grid = field.grid();
        let nx = grid.nx;
        let ny = grid.ny;
        let inv_dx2 = 1.0 / (grid.dx() * grid.dx());
        let inv_dy2 = 1.0 / (grid.dy() * grid.dy());
        let c = self.alpha * self.dt;
        let u = field.values().to_vec();
        let out = field.values_mut();
        for j in 0..ny {
            for i in 0..nx {
                let k = j * nx + i;
                let west = if i > 0 { u[k - 1] } else { bc.west };
                let east = if i + 1 < nx { u[k + 1] } else { bc.east };
                let south = if j > 0 { u[k - nx] } else { bc.south };
                let north = if j + 1 < ny { u[k + nx] } else { bc.north };
                let lap =
                    (west + east - 2.0 * u[k]) * inv_dx2 + (south + north - 2.0 * u[k]) * inv_dy2;
                out[k] = u[k] + c * lap;
            }
        }
    }

    fn name(&self) -> &'static str {
        "explicit-euler"
    }
}

/// Peaceman–Rachford alternating-direction implicit scheme: unconditionally
/// stable, two tridiagonal sweeps per step (Thomas algorithm), O(N) per step.
#[derive(Debug, Clone, Copy)]
pub struct AdiScheme {
    /// Thermal diffusivity `α`.
    pub alpha: f64,
    /// Time step `Δt`.
    pub dt: f64,
}

impl AdiScheme {
    /// Creates the scheme.
    pub fn new(alpha: f64, dt: f64) -> Self {
        Self { alpha, dt }
    }
}

impl TimeScheme for AdiScheme {
    fn step(&self, field: &mut Field, bc: &BoundaryConditions) {
        let grid = field.grid();
        let nx = grid.nx;
        let ny = grid.ny;
        let rx = 0.5 * self.alpha * self.dt / (grid.dx() * grid.dx());
        let ry = 0.5 * self.alpha * self.dt / (grid.dy() * grid.dy());
        let thomas = ThomasSolver;

        let u = field.values().to_vec();
        let mut half = vec![0.0; nx * ny];

        // First half-step: implicit along x, explicit along y.
        {
            let mut rhs = vec![0.0; nx];
            let mut scratch = vec![0.0; nx];
            for j in 0..ny {
                for (i, slot) in rhs.iter_mut().enumerate() {
                    let k = j * nx + i;
                    let south = if j > 0 { u[k - nx] } else { bc.south };
                    let north = if j + 1 < ny { u[k + nx] } else { bc.north };
                    let mut r = u[k] + ry * (south - 2.0 * u[k] + north);
                    // Dirichlet contributions of the implicit x-direction.
                    if i == 0 {
                        r += rx * bc.west;
                    }
                    if i + 1 == nx {
                        r += rx * bc.east;
                    }
                    *slot = r;
                }
                thomas.solve_constant(1.0 + 2.0 * rx, -rx, &mut rhs, &mut scratch);
                half[j * nx..(j + 1) * nx].copy_from_slice(&rhs);
            }
        }

        // Second half-step: implicit along y, explicit along x.
        {
            let mut rhs = vec![0.0; ny];
            let mut scratch = vec![0.0; ny];
            let out = field.values_mut();
            for i in 0..nx {
                for (j, slot) in rhs.iter_mut().enumerate() {
                    let k = j * nx + i;
                    let west = if i > 0 { half[k - 1] } else { bc.west };
                    let east = if i + 1 < nx { half[k + 1] } else { bc.east };
                    let mut r = half[k] + rx * (west - 2.0 * half[k] + east);
                    if j == 0 {
                        r += ry * bc.south;
                    }
                    if j + 1 == ny {
                        r += ry * bc.north;
                    }
                    *slot = r;
                }
                thomas.solve_constant(1.0 + 2.0 * ry, -ry, &mut rhs, &mut scratch);
                for j in 0..ny {
                    out[j * nx + i] = rhs[j];
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "adi-peaceman-rachford"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Field, Grid2D};

    fn setup(n: usize) -> (Field, BoundaryConditions) {
        let grid = Grid2D::unit_square(n, n);
        let field = Field::constant(grid, 300.0);
        let bc = BoundaryConditions {
            west: 200.0,
            east: 400.0,
            south: 250.0,
            north: 350.0,
        };
        (field, bc)
    }

    #[test]
    fn implicit_step_keeps_values_within_extremes() {
        // Maximum principle: temperatures stay within [min, max] of IC ∪ boundary.
        let (mut field, bc) = setup(12);
        let scheme = ImplicitEuler::new(1.0, 0.01);
        for _ in 0..20 {
            scheme.step(&mut field, &bc);
            assert!(field.min() >= 200.0 - 1e-6, "min {}", field.min());
            assert!(field.max() <= 400.0 + 1e-6, "max {}", field.max());
        }
    }

    #[test]
    fn implicit_converges_to_steady_state_mean() {
        // With uniform boundary at T, the steady state is the constant field T.
        let grid = Grid2D::unit_square(10, 10);
        let mut field = Field::constant(grid, 500.0);
        let bc = BoundaryConditions::uniform(250.0);
        let scheme = ImplicitEuler::new(1.0, 0.05);
        for _ in 0..400 {
            scheme.step(&mut field, &bc);
        }
        assert!((field.mean() - 250.0).abs() < 1e-3, "mean {}", field.mean());
        assert!((field.max() - field.min()).abs() < 1e-3);
    }

    #[test]
    fn explicit_stability_number() {
        let grid = Grid2D::unit_square(9, 9);
        let stable = ExplicitEuler::new(1.0, ExplicitEuler::max_stable_dt(1.0, &grid) * 0.99);
        let unstable = ExplicitEuler::new(1.0, ExplicitEuler::max_stable_dt(1.0, &grid) * 1.5);
        assert!(stable.is_stable(&grid));
        assert!(!unstable.is_stable(&grid));
    }

    #[test]
    fn explicit_and_implicit_agree_for_small_dt() {
        let grid = Grid2D::unit_square(8, 8);
        let dt = ExplicitEuler::max_stable_dt(1.0, &grid) * 0.4;
        let bc = BoundaryConditions {
            west: 150.0,
            east: 450.0,
            south: 300.0,
            north: 300.0,
        };
        let mut f_exp = Field::constant(grid, 300.0);
        let mut f_imp = Field::constant(grid, 300.0);
        let explicit = ExplicitEuler::new(1.0, dt);
        let implicit = ImplicitEuler::new(1.0, dt);
        for _ in 0..50 {
            explicit.step(&mut f_exp, &bc);
            implicit.step(&mut f_imp, &bc);
        }
        // Both are first order in time; with a small dt they track each other.
        assert!(
            f_exp.rms_diff(&f_imp) < 1.0,
            "rms {}",
            f_exp.rms_diff(&f_imp)
        );
    }

    #[test]
    fn adi_and_implicit_converge_to_same_steady_state() {
        let grid = Grid2D::unit_square(10, 10);
        let bc = BoundaryConditions {
            west: 100.0,
            east: 500.0,
            south: 200.0,
            north: 400.0,
        };
        let mut f_adi = Field::constant(grid, 300.0);
        let mut f_imp = Field::constant(grid, 300.0);
        let adi = AdiScheme::new(1.0, 0.02);
        let imp = ImplicitEuler::new(1.0, 0.02);
        for _ in 0..600 {
            adi.step(&mut f_adi, &bc);
            imp.step(&mut f_imp, &bc);
        }
        assert!(
            f_adi.rms_diff(&f_imp) < 1e-2,
            "rms {}",
            f_adi.rms_diff(&f_imp)
        );
    }

    #[test]
    fn adi_stays_near_physical_bounds() {
        // Peaceman–Rachford is unconditionally stable but not strictly monotone:
        // for large diffusion numbers it oscillates around the solution. With a
        // moderate time step the overshoot stays small relative to the 200 K span.
        let (mut field, bc) = setup(16);
        let scheme = AdiScheme::new(1.0, 0.01);
        for _ in 0..50 {
            scheme.step(&mut field, &bc);
            assert!(field.min() >= 200.0 - 2.0, "min {}", field.min());
            assert!(field.max() <= 400.0 + 2.0, "max {}", field.max());
        }
    }

    #[test]
    fn scheme_names_are_distinct() {
        let a = ImplicitEuler::new(1.0, 0.01);
        let b = ExplicitEuler::new(1.0, 0.01);
        let c = AdiScheme::new(1.0, 0.01);
        assert_ne!(a.name(), b.name());
        assert_ne!(b.name(), c.name());
        assert_ne!(a.name(), c.name());
    }

    #[test]
    fn uniform_boundary_and_ic_is_a_fixed_point() {
        let grid = Grid2D::unit_square(6, 6);
        let bc = BoundaryConditions::uniform(300.0);
        for scheme in [
            Box::new(ImplicitEuler::new(1.0, 0.01)) as Box<dyn TimeScheme>,
            Box::new(ExplicitEuler::new(1.0, 1e-4)),
            Box::new(AdiScheme::new(1.0, 0.01)),
        ] {
            let mut field = Field::constant(grid, 300.0);
            scheme.step(&mut field, &bc);
            for &v in field.values() {
                assert!(
                    (v - 300.0).abs() < 1e-9,
                    "{} broke fixed point",
                    scheme.name()
                );
            }
        }
    }
}
