//! Cartesian grid and scalar field containers.
//!
//! The paper discretises the temperature field on a regular 2D Cartesian grid
//! (1000×1000 in the large experiments). [`Grid2D`] stores the geometry and
//! [`Field`] stores one scalar value per interior node in row-major order
//! (`y` outer, `x` inner), which is also the layout the solver streams to the
//! training server.

use serde::{Deserialize, Serialize};

/// A regular 2D Cartesian grid over the rectangular domain `[0, lx] × [0, ly]`.
///
/// `nx` and `ny` count the *interior* nodes carried by a [`Field`]; boundary
/// values are imposed by [`crate::BoundaryConditions`] and never stored.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grid2D {
    /// Number of interior nodes along x.
    pub nx: usize,
    /// Number of interior nodes along y.
    pub ny: usize,
    /// Physical domain length along x (metres).
    pub lx: f64,
    /// Physical domain length along y (metres).
    pub ly: f64,
}

impl Grid2D {
    /// Creates a grid with `nx × ny` interior nodes over a unit square.
    pub fn unit_square(nx: usize, ny: usize) -> Self {
        Self {
            nx,
            ny,
            lx: 1.0,
            ly: 1.0,
        }
    }

    /// Creates a grid over a rectangular domain of physical size `lx × ly`.
    pub fn rectangle(nx: usize, ny: usize, lx: f64, ly: f64) -> Self {
        Self { nx, ny, lx, ly }
    }

    /// Grid spacing along x. Nodes sit at `x_i = (i + 1) * dx`, `i ∈ [0, nx)`.
    #[inline]
    pub fn dx(&self) -> f64 {
        self.lx / (self.nx as f64 + 1.0)
    }

    /// Grid spacing along y.
    #[inline]
    pub fn dy(&self) -> f64 {
        self.ly / (self.ny as f64 + 1.0)
    }

    /// Total number of interior nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// True when the grid has no interior nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major linear index of the interior node `(i, j)` (x-index `i`, y-index `j`).
    #[inline]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny);
        j * self.nx + i
    }

    /// Physical coordinates of the interior node `(i, j)`.
    #[inline]
    pub fn coords(&self, i: usize, j: usize) -> (f64, f64) {
        ((i as f64 + 1.0) * self.dx(), (j as f64 + 1.0) * self.dy())
    }

    /// Iterator over all interior node indices `(i, j)` in row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let nx = self.nx;
        (0..self.ny).flat_map(move |j| (0..nx).map(move |i| (i, j)))
    }
}

/// A scalar field (e.g. temperature) defined on the interior nodes of a [`Grid2D`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    grid: Grid2D,
    values: Vec<f64>,
}

impl Field {
    /// Creates a field filled with a constant value.
    pub fn constant(grid: Grid2D, value: f64) -> Self {
        Self {
            grid,
            values: vec![value; grid.len()],
        }
    }

    /// Creates a field filled with zeros.
    pub fn zeros(grid: Grid2D) -> Self {
        Self::constant(grid, 0.0)
    }

    /// Creates a field from raw row-major values.
    ///
    /// # Panics
    /// Panics when the number of values does not match the grid size.
    pub fn from_values(grid: Grid2D, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            grid.len(),
            "field values must match grid size"
        );
        Self { grid, values }
    }

    /// Creates a field by evaluating `f(x, y)` at each interior node.
    pub fn from_fn(grid: Grid2D, mut f: impl FnMut(f64, f64) -> f64) -> Self {
        let mut values = Vec::with_capacity(grid.len());
        for j in 0..grid.ny {
            for i in 0..grid.nx {
                let (x, y) = grid.coords(i, j);
                values.push(f(x, y));
            }
        }
        Self { grid, values }
    }

    /// The grid this field is defined on.
    #[inline]
    pub fn grid(&self) -> Grid2D {
        self.grid
    }

    /// Number of values in the field.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the field holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw row-major values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable raw row-major values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the field, returning its raw values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Value at interior node `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[self.grid.idx(i, j)]
    }

    /// Sets the value at interior node `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        let idx = self.grid.idx(i, j);
        self.values[idx] = value;
    }

    /// Minimum value of the field (NaN-free fields assumed).
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value of the field.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean value of the field.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// L2 norm of the field seen as a flat vector.
    pub fn norm2(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Root-mean-square difference with another field defined on the same grid.
    ///
    /// # Panics
    /// Panics when the fields have different sizes.
    pub fn rms_diff(&self, other: &Field) -> f64 {
        assert_eq!(self.values.len(), other.values.len());
        if self.values.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (sum / self.values.len() as f64).sqrt()
    }

    /// Maximum absolute difference with another field defined on the same grid.
    pub fn max_abs_diff(&self, other: &Field) -> f64 {
        assert_eq!(self.values.len(), other.values.len());
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Down-converts to `f32`, the precision streamed to the training server
    /// (the paper gathers on rank zero and converts from 64 to 32 bits in situ).
    pub fn to_f32(&self) -> Vec<f32> {
        self.values.iter().map(|&v| v as f32).collect()
    }

    /// True when every value is finite.
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_spacing_and_indexing() {
        let grid = Grid2D::unit_square(9, 4);
        assert!((grid.dx() - 0.1).abs() < 1e-12);
        assert!((grid.dy() - 0.2).abs() < 1e-12);
        assert_eq!(grid.len(), 36);
        assert_eq!(grid.idx(0, 0), 0);
        assert_eq!(grid.idx(8, 0), 8);
        assert_eq!(grid.idx(0, 1), 9);
        assert_eq!(grid.idx(8, 3), 35);
    }

    #[test]
    fn grid_coords_are_interior() {
        let grid = Grid2D::unit_square(3, 3);
        let (x0, y0) = grid.coords(0, 0);
        let (x2, y2) = grid.coords(2, 2);
        assert!(x0 > 0.0 && y0 > 0.0);
        assert!(x2 < 1.0 && y2 < 1.0);
    }

    #[test]
    fn grid_nodes_iterates_row_major() {
        let grid = Grid2D::unit_square(2, 2);
        let nodes: Vec<_> = grid.nodes().collect();
        assert_eq!(nodes, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn field_constant_and_stats() {
        let grid = Grid2D::unit_square(4, 4);
        let f = Field::constant(grid, 300.0);
        assert_eq!(f.len(), 16);
        assert_eq!(f.min(), 300.0);
        assert_eq!(f.max(), 300.0);
        assert!((f.mean() - 300.0).abs() < 1e-12);
    }

    #[test]
    fn field_from_fn_evaluates_coordinates() {
        let grid = Grid2D::unit_square(3, 3);
        let f = Field::from_fn(grid, |x, y| x + 10.0 * y);
        // node (0,0) is at (0.25, 0.25)
        assert!((f.get(0, 0) - (0.25 + 2.5)).abs() < 1e-12);
        // node (2,2) is at (0.75, 0.75)
        assert!((f.get(2, 2) - (0.75 + 7.5)).abs() < 1e-12);
    }

    #[test]
    fn field_set_get_roundtrip() {
        let grid = Grid2D::unit_square(5, 3);
        let mut f = Field::zeros(grid);
        f.set(4, 2, 42.0);
        assert_eq!(f.get(4, 2), 42.0);
        assert_eq!(f.values()[grid.idx(4, 2)], 42.0);
    }

    #[test]
    fn field_rms_and_max_diff() {
        let grid = Grid2D::unit_square(2, 2);
        let a = Field::constant(grid, 1.0);
        let b = Field::constant(grid, 3.0);
        assert!((a.rms_diff(&b) - 2.0).abs() < 1e-12);
        assert!((a.max_abs_diff(&b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn field_to_f32_preserves_length() {
        let grid = Grid2D::unit_square(7, 5);
        let f = Field::from_fn(grid, |x, y| 100.0 * x * y);
        let v = f.to_f32();
        assert_eq!(v.len(), f.len());
    }

    #[test]
    #[should_panic(expected = "field values must match grid size")]
    fn field_from_values_checks_len() {
        let grid = Grid2D::unit_square(2, 2);
        let _ = Field::from_values(grid, vec![0.0; 3]);
    }
}
