//! Property-based tests of the heat-equation solver substrate.

use heat_solver::{
    BoundaryConditions, ConjugateGradient, DomainDecomposition, Field, Grid2D, ImplicitEuler,
    ParameterSpace, SimulationParams, SolverConfig, SyntheticWorkload, TimeScheme,
};
use proptest::prelude::*;

fn temperature() -> impl Strategy<Value = f64> {
    100.0f64..500.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Maximum principle: for any admissible parameters, the implicit solution
    /// stays within the envelope of the initial and boundary temperatures.
    #[test]
    fn implicit_euler_respects_maximum_principle(
        t_ic in temperature(),
        west in temperature(),
        east in temperature(),
        south in temperature(),
        north in temperature(),
        steps in 1usize..12,
    ) {
        let params = SimulationParams::new([t_ic, west, south, east, north]);
        let lo = params.min_temperature();
        let hi = params.max_temperature();
        let grid = Grid2D::unit_square(10, 10);
        let mut field = Field::constant(grid, t_ic);
        let bc = BoundaryConditions::from_params(&params);
        let scheme = ImplicitEuler::new(1.0, 0.01);
        for _ in 0..steps {
            scheme.step(&mut field, &bc);
            prop_assert!(field.min() >= lo - 1e-6, "min {} < {}", field.min(), lo);
            prop_assert!(field.max() <= hi + 1e-6, "max {} > {}", field.max(), hi);
        }
    }

    /// The conjugate-gradient solver recovers manufactured solutions on grids of
    /// arbitrary (small) shape.
    #[test]
    fn cg_recovers_manufactured_solutions(
        nx in 2usize..12,
        ny in 2usize..12,
        dt in 1e-4f64..0.1,
    ) {
        let grid = Grid2D::unit_square(nx, ny);
        let op = heat_solver::linalg::HeatOperator::new(grid, 1.0, dt);
        let x_true: Vec<f64> = (0..grid.len()).map(|k| ((k * 37 % 17) as f64) / 17.0 - 0.5).collect();
        let mut b = vec![0.0; grid.len()];
        op.apply(&x_true, &mut b);
        let mut x = vec![0.0; grid.len()];
        let report = ConjugateGradient::default().solve(&op, &b, &mut x);
        prop_assert!(report.converged);
        let err: f64 = x.iter().zip(&x_true).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        prop_assert!(err < 1e-5, "max error {err}");
    }

    /// Scatter followed by gather is the identity for any rank count.
    #[test]
    fn scatter_gather_identity(
        nx in 1usize..12,
        ny in 1usize..12,
        ranks in 1usize..8,
        seed_value in -100.0f64..100.0,
    ) {
        let grid = Grid2D::unit_square(nx, ny);
        let field = Field::from_fn(grid, |x, y| seed_value + 10.0 * x - 3.0 * y);
        let decomposition = DomainDecomposition::rows(grid, ranks);
        let gathered = decomposition.gather(&decomposition.scatter(&field));
        prop_assert_eq!(gathered, field);
    }

    /// The parameter space maps the unit hypercube into itself bijectively
    /// (within floating-point tolerance).
    #[test]
    fn parameter_space_roundtrip(u in prop::collection::vec(0.0f64..1.0, 5)) {
        let space = ParameterSpace::default();
        let unit: [f64; 5] = [u[0], u[1], u[2], u[3], u[4]];
        let params = space.from_unit(unit);
        prop_assert!(space.contains(&params));
        let back = space.to_unit(&params);
        for (a, b) in unit.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Every workload kind produces trajectories of the configured shape with
    /// finite values inside the sampled temperature range.
    #[test]
    fn workloads_produce_well_formed_trajectories(
        t_ic in temperature(),
        west in temperature(),
        east in temperature(),
        south in temperature(),
        north in temperature(),
        analytic in any::<bool>(),
    ) {
        let params = SimulationParams::new([t_ic, west, south, east, north]);
        let config = SolverConfig { nx: 6, ny: 6, steps: 5, ..SolverConfig::default() };
        let workload = if analytic {
            SyntheticWorkload::analytic(config)
        } else {
            SyntheticWorkload::solver(config)
        };
        let trajectory = workload.trajectory(params).unwrap();
        prop_assert_eq!(trajectory.len(), 5);
        for (k, step) in trajectory.iter().enumerate() {
            prop_assert_eq!(step.step, k);
            prop_assert_eq!(step.values.len(), 36);
            for &v in &step.values {
                prop_assert!(v.is_finite());
                prop_assert!((99.0..=501.0).contains(&(v as f64)));
            }
        }
    }

    /// Trajectories are deterministic: the same configuration and parameters
    /// always produce the same fields.
    #[test]
    fn solver_is_deterministic(
        t_ic in temperature(),
        west in temperature(),
    ) {
        let params = SimulationParams::new([t_ic, west, 200.0, 300.0, 400.0]);
        let config = SolverConfig { nx: 8, ny: 8, steps: 4, ..SolverConfig::default() };
        let a = SyntheticWorkload::solver(config).trajectory(params).unwrap();
        let b = SyntheticWorkload::solver(config).trajectory(params).unwrap();
        prop_assert_eq!(a, b);
    }
}
