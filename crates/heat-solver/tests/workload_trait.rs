//! Property-based tests of the [`Workload`] contract on the heat physics:
//! the paper's workload, exercised exclusively through the physics-agnostic
//! trait the training stack uses.

use heat_solver::{SolverConfig, SyntheticWorkload};
use melissa_workload::Workload;
use proptest::prelude::*;

fn coarse_config() -> SolverConfig {
    SolverConfig {
        nx: 8,
        ny: 8,
        steps: 6,
        ..SolverConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same parameters ⇒ bit-identical stream through the trait, for both the
    /// real solver and the analytic variant.
    #[test]
    fn generation_is_deterministic(
        t_ic in 100.0f64..500.0,
        t_x1 in 100.0f64..500.0,
        t_y1 in 100.0f64..500.0,
        t_x2 in 100.0f64..500.0,
        t_y2 in 100.0f64..500.0,
        analytic in any::<bool>(),
    ) {
        let params = [t_ic, t_x1, t_y1, t_x2, t_y2];
        let workload = if analytic {
            SyntheticWorkload::analytic(coarse_config())
        } else {
            SyntheticWorkload::solver(coarse_config())
        };
        let a = Workload::trajectory(&workload, params).unwrap();
        let b = Workload::trajectory(&workload, params).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Field length equals the declared grid size and values stay inside the
    /// declared output range (the maximum principle), through the trait.
    #[test]
    fn fields_match_the_declared_shape(
        t_ic in 100.0f64..500.0,
        t_x1 in 100.0f64..500.0,
        t_y1 in 100.0f64..500.0,
        t_x2 in 100.0f64..500.0,
        t_y2 in 100.0f64..500.0,
        analytic in any::<bool>(),
    ) {
        let params = [t_ic, t_x1, t_y1, t_x2, t_y2];
        let workload = if analytic {
            SyntheticWorkload::analytic(coarse_config())
        } else {
            SyntheticWorkload::solver(coarse_config())
        };
        prop_assert_eq!(workload.shape(), vec![8, 8]);
        prop_assert_eq!(workload.field_len(), 64);
        let range = workload.output_range();
        let trajectory = Workload::trajectory(&workload, params).unwrap();
        prop_assert_eq!(trajectory.len(), workload.steps());
        for (k, step) in trajectory.iter().enumerate() {
            prop_assert_eq!(step.step, k);
            prop_assert_eq!(step.values.len(), workload.field_len());
            prop_assert_eq!(step.params, params);
            for &v in &step.values {
                prop_assert!(v.is_finite());
                // A whisker of slack for f32 rounding at the range edges.
                prop_assert!(
                    (v as f64) >= range.min - 1.0 && (v as f64) <= range.max + 1.0,
                    "value {} escapes [{}, {}]", v, range.min, range.max
                );
            }
        }
    }

    /// The closed-form approximation tracks the real solver on a coarse grid
    /// late in the trajectory, when both approach the boundary-driven steady
    /// state (the regime the analytic blend is built for).
    #[test]
    fn analytic_and_solver_variants_agree(
        t_ic in 100.0f64..500.0,
        t_x1 in 100.0f64..500.0,
        t_y1 in 100.0f64..500.0,
        t_x2 in 100.0f64..500.0,
        t_y2 in 100.0f64..500.0,
    ) {
        let params = [t_ic, t_x1, t_y1, t_x2, t_y2];
        let mut config = coarse_config();
        config.steps = 150;
        let analytic = Workload::trajectory(&SyntheticWorkload::analytic(config), params).unwrap();
        let solver = Workload::trajectory(&SyntheticWorkload::solver(config), params).unwrap();
        let last_a = analytic.last().unwrap();
        let last_s = solver.last().unwrap();
        let mean = |values: &[f32]| values.iter().sum::<f32>() / values.len() as f32;
        let (mean_a, mean_s) = (mean(&last_a.values), mean(&last_s.values));
        // 400 K is the span of the sampled range; agree within 10% of it.
        prop_assert!(
            (mean_a - mean_s).abs() < 40.0,
            "field means {mean_a} vs {mean_s}"
        );
    }
}
