//! Durability suite: process-kill recovery and on-disk corruption handling
//! for the crash-safe checkpoint store and completion journal (§3.1).
//!
//! Two families of tests live here:
//!
//! * **SIGKILL-and-resume**: a training server runs in a *separate spawned
//!   process* (this test binary re-executed with `--exact` on a hidden child
//!   test), gets `kill -9`'d mid-run — no destructors, no flush-on-exit —
//!   and is restarted from its durability directory alone. The restart must
//!   rerun exactly the simulations covered by neither the newest valid
//!   checkpoint nor the completion journal: exactly-once per-simulation
//!   accounting across an unclean process death.
//! * **Corruption handling**: checkpoint files and journal tails are
//!   bit-flipped, truncated and version-bumped on disk. Every injection must
//!   be *detected* (typed [`DurabilityError`], never a panic and never
//!   silently-wrong state) and *survived* (fall back to the newest earlier
//!   checkpoint, drop the journal's torn tail, rerun what was lost).
//!
//! The byte offsets used by the corruption tests pin the version-1 file
//! formats: checkpoint = magic(8) version(4) reserved(4) seed(8)
//! fingerprint(8) epoch(8) payload_len(8) payload trailing-checksum(8);
//! journal = 40-byte header + 24-byte records. Changing the layout must bump
//! `DURABLE_FORMAT_VERSION` and update these tests.

use heat_solver::SolverConfig;
use melissa::{
    CompletionJournal, CorruptKind, DurabilityConfig, DurabilityError, DurableCheckpointStore,
    DurableIdentity, ExperimentConfig, OnlineExperiment, WorkloadSpec,
};
use melissa_ensemble::CampaignPlan;
use melissa_transport::Checksum64;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use training_buffer::{BufferConfig, BufferKind};

const CLIENTS: usize = 8;
const STEPS: usize = 10;

/// Environment variable carrying the durability directory to the spawned
/// child process; when unset, the hidden child test is a no-op pass.
const CHILD_DIR_ENV: &str = "MELISSA_DURABILITY_CHILD_DIR";

/// The experiment both the child and the resuming parent run. `slow` adds an
/// emulated per-batch device delay so the parent has seconds — not
/// milliseconds — to observe a checkpoint and kill the child mid-run. Device
/// emulation is an operational knob, excluded from the config fingerprint, so
/// the fast resume and the slow child agree on the experiment identity.
fn durable_config(dir: &Path, slow: bool) -> ExperimentConfig {
    let mut config = ExperimentConfig::builder()
        .workload(WorkloadSpec::heat_analytic(SolverConfig {
            nx: 8,
            ny: 8,
            steps: STEPS,
            ..SolverConfig::default()
        }))
        .campaign(CampaignPlan::single_series(CLIENTS, 4))
        .buffer(BufferConfig {
            kind: BufferKind::Fifo,
            capacity: 32,
            threshold: 4,
            seed: 7,
        })
        .batch_size(4)
        .validation(2, 4)
        .hidden_width(16)
        .seed(4242)
        .checkpoint_every_batches(1)
        .durability(DurabilityConfig::new(dir.to_string_lossy()))
        .build()
        .expect("consistent durable configuration");
    if slow {
        config.training.device.extra_batch_micros = 150_000;
    }
    config
}

fn identity_of(config: &ExperimentConfig) -> DurableIdentity {
    DurableIdentity {
        experiment_seed: config.seed,
        config_fingerprint: config.config_fingerprint(),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("melissa-durability-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Checkpoint files of a durability directory, sorted oldest first.
fn checkpoint_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-"))
        })
        .collect();
    files.sort();
    files
}

/// Runs a small durable experiment to completion, leaving valid checkpoint
/// files and a journal in `dir`, and returns its configuration.
fn seed_durable_dir(dir: &Path) -> ExperimentConfig {
    let config = durable_config(dir, false);
    let (_, report, _) = OnlineExperiment::new(config.clone())
        .expect("valid configuration")
        .run_recoverable();
    assert_eq!(report.durable_error, None, "the seeding run must persist");
    assert!(
        report.durable_checkpoints >= 2,
        "need checkpoints to corrupt"
    );
    config
}

// ---------------------------------------------------------------------------
// SIGKILL-and-resume
// ---------------------------------------------------------------------------

/// Hidden child body of `sigkill_mid_run_then_resume_from_disk`: runs the
/// slow durable experiment into the directory named by the environment and
/// expects to be killed before finishing. Without the environment variable
/// (every normal `cargo test` run) it passes as a no-op.
#[test]
fn sigkill_child_runs_durable_experiment() {
    let Some(dir) = std::env::var_os(CHILD_DIR_ENV) else {
        return;
    };
    let config = durable_config(Path::new(&dir), true);
    let (_, report, _) = OnlineExperiment::new(config)
        .expect("valid configuration")
        .run_recoverable();
    // Only reached if the parent failed to kill us in time; persisting must
    // still have worked so the parent's resume finds a finished directory.
    assert_eq!(report.durable_error, None);
}

#[cfg(unix)]
#[test]
fn sigkill_mid_run_then_resume_from_disk_reruns_only_missing_sims() {
    use std::os::unix::process::ExitStatusExt;
    use std::process::{Command, Stdio};

    let dir = temp_dir("sigkill");
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(exe)
        .args([
            "--exact",
            "sigkill_child_runs_durable_experiment",
            "--nocapture",
            "--test-threads",
            "1",
        ])
        .env(CHILD_DIR_ENV, &dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn the child server process");

    // Wait until a durable checkpoint records at least one completed
    // simulation, so the kill leaves both completed work (must not rerun)
    // and open work (must rerun). The atomic write protocol guarantees this
    // concurrent read-side scan never observes a torn file — only
    // fully-renamed checkpoints are visible. (The journal is not polled: a
    // concurrent `CompletionJournal::open` would truncate in-flight tails.)
    let config = durable_config(&dir, false);
    let identity = identity_of(&config);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            panic!("child finished before the kill: {status:?}");
        }
        let checkpointed_completions = DurableCheckpointStore::open(&dir, identity, 3)
            .ok()
            .and_then(|store| store.load_latest().ok())
            .and_then(|latest| latest.latest)
            .map_or(0, |(_, cp)| cp.completed_simulations.len());
        if checkpointed_completions >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no durable completion appeared within 60s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // SIGKILL: no signal handler, no Drop, no flush — the hard case.
    child.kill().expect("deliver SIGKILL");
    let status = child.wait().expect("reap the child");
    assert!(
        status.code().is_none() && status.signal() == Some(9),
        "the child must die by SIGKILL, got {status:?}"
    );

    // What the disk knows: the newest valid checkpoint plus every journaled
    // completion. The restart contract is to rerun exactly the rest.
    let store = DurableCheckpointStore::open(&dir, identity, 3).unwrap();
    let latest = store.load_latest().unwrap();
    assert!(
        latest.rejected.is_empty(),
        "an unclean kill must not leave torn checkpoint files: {:?}",
        latest.rejected
    );
    let (_, checkpoint) = latest.latest.expect("polled until a checkpoint existed");
    drop(store);
    let (journal, journaled) = CompletionJournal::open(&dir, identity, 8).unwrap();
    drop(journal);
    let durable_completed: BTreeSet<u64> = checkpoint
        .completed_simulations
        .iter()
        .copied()
        .chain(journaled)
        .collect();
    let missing: Vec<u64> = (0..CLIENTS as u64)
        .filter(|id| !durable_completed.contains(id))
        .collect();
    assert!(
        !durable_completed.is_empty(),
        "polled until a completion was durable: there is work to skip"
    );
    assert!(
        !missing.is_empty(),
        "killed mid-run with the slow device profile: there is work to rerun"
    );

    // Restart purely from the directory (fast device profile this time).
    let (model, resume_report, final_checkpoint) =
        OnlineExperiment::resume_from_dir(&dir, config).expect("resume from the killed run's dir");
    assert!(model.params_flat().iter().all(|p| p.is_finite()));
    assert_eq!(resume_report.durable_error, None);
    assert_eq!(
        resume_report.resumed_from_batches,
        Some(checkpoint.batches_trained)
    );

    // Exactly-once per-simulation accounting: the resumed run streams and
    // trains precisely the missing simulations — completed ones are not
    // resubmitted, killed-mid-stream ones are rerun from scratch.
    let transport = resume_report.transport.as_ref().expect("online stats");
    assert_eq!(
        transport.messages_sent,
        missing.len() * STEPS,
        "only the simulations absent from checkpoint+journal rerun"
    );
    assert_eq!(
        resume_report.unique_samples_trained,
        missing.len() * STEPS,
        "durably completed simulations must not be retrained"
    );

    // The final checkpoint closes the campaign: every simulation covered.
    let final_checkpoint = final_checkpoint.expect("the clean resume leaves a checkpoint");
    assert_eq!(
        final_checkpoint.completed_simulations,
        (0..CLIENTS as u64).collect::<Vec<_>>(),
        "checkpoint + journal + rerun must cover the whole campaign"
    );

    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Corruption handling
// ---------------------------------------------------------------------------

#[test]
fn bit_flipped_newest_checkpoint_falls_back_to_the_previous_one() {
    let dir = temp_dir("bitflip");
    let config = seed_durable_dir(&dir);

    let files = checkpoint_files(&dir);
    assert!(files.len() >= 2, "retention keeps several checkpoints");
    let newest = files.last().unwrap();
    let mut bytes = fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40; // one flipped bit in the payload
    fs::write(newest, &bytes).unwrap();

    let store = DurableCheckpointStore::open(&dir, identity_of(&config), 3).unwrap();
    let latest = store.load_latest().unwrap();
    assert_eq!(latest.rejected.len(), 1, "the flipped file is detected");
    assert!(matches!(
        latest.rejected[0],
        DurabilityError::Corrupt {
            kind: CorruptKind::ChecksumMismatch,
            ..
        }
    ));
    let (_, fallback) = latest.latest.expect("an earlier checkpoint survives");
    drop(store);

    // The journal still covers every completion recorded after the fallback
    // checkpoint, so resuming the corrupted directory reruns nothing.
    assert!(fallback.completed_simulations.len() <= CLIENTS);
    let (_, report, resumed) = OnlineExperiment::resume_from_dir(&dir, config).unwrap();
    assert_eq!(report.durable_error, None);
    assert_eq!(report.transport.unwrap().messages_sent, 0);
    assert_eq!(
        resumed.unwrap().completed_simulations.len(),
        CLIENTS,
        "fallback checkpoint + journal still cover the campaign"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_newest_checkpoint_is_rejected_not_parsed() {
    let dir = temp_dir("truncate");
    let config = seed_durable_dir(&dir);

    let files = checkpoint_files(&dir);
    let newest = files.last().unwrap();
    let bytes = fs::read(newest).unwrap();
    fs::write(newest, &bytes[..bytes.len() - 5]).unwrap(); // torn trailing checksum

    let store = DurableCheckpointStore::open(&dir, identity_of(&config), 3).unwrap();
    let latest = store.load_latest().unwrap();
    assert_eq!(latest.rejected.len(), 1);
    assert!(matches!(
        latest.rejected[0],
        DurabilityError::Corrupt {
            kind: CorruptKind::TruncatedPayload,
            ..
        }
    ));
    assert!(latest.latest.is_some(), "an earlier checkpoint survives");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn version_bumped_checkpoint_is_unsupported_even_with_a_valid_checksum() {
    let dir = temp_dir("version");
    let config = seed_durable_dir(&dir);

    // Bump the format version *and* recompute the trailing checksum, so only
    // the version check — not the checksum — can reject the file.
    let files = checkpoint_files(&dir);
    let newest = files.last().unwrap();
    let mut bytes = fs::read(newest).unwrap();
    bytes[8..12].copy_from_slice(&(melissa::DURABLE_FORMAT_VERSION + 1).to_le_bytes());
    let body_len = bytes.len() - 8;
    let checksum = Checksum64::digest(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
    fs::write(newest, &bytes).unwrap();

    let store = DurableCheckpointStore::open(&dir, identity_of(&config), 3).unwrap();
    let latest = store.load_latest().unwrap();
    assert!(matches!(
        latest.rejected[0],
        DurabilityError::Corrupt {
            kind: CorruptKind::UnsupportedVersion,
            ..
        }
    ));
    assert!(
        latest.latest.is_some(),
        "older same-version files still load"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_is_dropped_and_the_rest_replays() {
    let dir = temp_dir("torn-tail");
    let config = seed_durable_dir(&dir);
    let identity = identity_of(&config);

    let journal_path = dir.join("journal");
    let (_, complete_replay) = CompletionJournal::open(&dir, identity, 8).unwrap();
    assert_eq!(
        complete_replay.len(),
        CLIENTS,
        "the run journaled every sim"
    );

    // A kill mid-append leaves a partial trailing record: 10 bytes of a
    // 24-byte record. Replay must keep every whole record and drop the tail.
    let mut bytes = fs::read(&journal_path).unwrap();
    bytes.extend_from_slice(&[0xAB; 10]);
    fs::write(&journal_path, &bytes).unwrap();
    let (journal, replayed) = CompletionJournal::open(&dir, identity, 8).unwrap();
    assert_eq!(replayed, complete_replay, "whole records all survive");
    // The truncation repaired the file: appending works again.
    journal.append(10_000).unwrap();
    journal.flush().unwrap();
    drop(journal);
    let (_, after) = CompletionJournal::open(&dir, identity, 8).unwrap();
    assert_eq!(after.len(), complete_replay.len() + 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_mid_journal_record_loses_the_tail_but_the_resume_still_completes() {
    let dir = temp_dir("mid-journal");
    let config = seed_durable_dir(&dir);
    let identity = identity_of(&config);

    // Flip one bit in the middle of the records region (header is 40 bytes,
    // records 24). Replay stops at the damaged record; the completions behind
    // it fall back to the checkpoints or are rerun — never double-counted.
    let journal_path = dir.join("journal");
    let mut bytes = fs::read(&journal_path).unwrap();
    let damaged_index = (bytes.len() - 40) / 24 / 2;
    bytes[40 + damaged_index * 24 + 3] ^= 0x01;
    fs::write(&journal_path, &bytes).unwrap();

    let (_, replayed) = CompletionJournal::open(&dir, identity, 8).unwrap();
    assert_eq!(replayed.len(), damaged_index, "replay ends at the damage");

    let (model, report, resumed) = OnlineExperiment::resume_from_dir(&dir, config).unwrap();
    assert!(model.params_flat().iter().all(|p| p.is_finite()));
    assert_eq!(report.durable_error, None);
    assert_eq!(
        resumed.unwrap().completed_simulations.len(),
        CLIENTS,
        "the resume reruns whatever the damaged journal no longer proves"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_journal_header_is_a_typed_error_not_a_panic() {
    let dir = temp_dir("journal-header");
    let config = seed_durable_dir(&dir);

    let journal_path = dir.join("journal");
    let mut bytes = fs::read(&journal_path).unwrap();
    bytes[0] ^= 0xFF; // destroy the magic
    fs::write(&journal_path, &bytes).unwrap();

    let result = CompletionJournal::open(&dir, identity_of(&config), 8);
    assert!(matches!(
        result,
        Err(DurabilityError::Corrupt {
            kind: CorruptKind::BadMagic,
            ..
        })
    ));
    // The strict resume path surfaces the same typed error instead of
    // silently starting over (which would double-run completed simulations).
    let resume = OnlineExperiment::resume_from_dir(&dir, config);
    assert!(matches!(resume, Err(DurabilityError::Corrupt { .. })));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn foreign_experiment_checkpoints_are_rejected_by_identity() {
    let dir = temp_dir("foreign");
    let config = seed_durable_dir(&dir);

    // Same directory, different experiment seed: every file is detected as
    // belonging to a different experiment, none is loaded.
    let mut foreign = identity_of(&config);
    foreign.experiment_seed ^= 1;
    let store = DurableCheckpointStore::open(&dir, foreign, 3).unwrap();
    let latest = store.load_latest().unwrap();
    assert!(latest.latest.is_none());
    assert!(!latest.rejected.is_empty());
    assert!(latest
        .rejected
        .iter()
        .all(|e| matches!(e, DurabilityError::IdentityMismatch { .. })));
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Property: arbitrary corruption never panics and never parses garbage
// ---------------------------------------------------------------------------

/// One valid durable directory's files, captured once and restored into a
/// fresh directory per proptest case.
struct DurableFixture {
    config: ExperimentConfig,
    checkpoint_bytes: Vec<u8>,
    journal_bytes: Vec<u8>,
}

fn fixture() -> &'static DurableFixture {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<DurableFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = temp_dir("proptest-fixture");
        let config = seed_durable_dir(&dir);
        let newest = checkpoint_files(&dir).pop().unwrap();
        let checkpoint_bytes = fs::read(newest).unwrap();
        let journal_bytes = fs::read(dir.join("journal")).unwrap();
        let _ = fs::remove_dir_all(&dir);
        DurableFixture {
            config,
            checkpoint_bytes,
            journal_bytes,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single-byte corruption at any offset of a checkpoint file is
    /// rejected as a typed error — `load_latest` never panics and never
    /// returns a checkpoint parsed from damaged bytes.
    #[test]
    fn any_checkpoint_byte_corruption_is_detected(offset_frac in 0.0f64..1.0, xor in 1u8..=255) {
        let fx = fixture();
        let dir = temp_dir("prop-ckpt");
        let mut bytes = fx.checkpoint_bytes.clone();
        let offset = ((bytes.len() - 1) as f64 * offset_frac) as usize;
        bytes[offset] ^= xor;
        fs::write(dir.join("ckpt-0000000000"), &bytes).unwrap();

        let store = DurableCheckpointStore::open(&dir, identity_of(&fx.config), 3).unwrap();
        let latest = store.load_latest().unwrap();
        prop_assert!(latest.latest.is_none(), "corrupted checkpoint must not load (offset {offset})");
        prop_assert_eq!(latest.rejected.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Any truncation of the journal opens without a panic: either a typed
    /// header error (cut inside the header) or a clean replay of the whole
    /// records that remain.
    #[test]
    fn any_journal_truncation_opens_cleanly(keep_frac in 0.0f64..1.0) {
        let fx = fixture();
        let dir = temp_dir("prop-journal");
        let keep = ((fx.journal_bytes.len()) as f64 * keep_frac) as usize;
        fs::write(dir.join("journal"), &fx.journal_bytes[..keep]).unwrap();

        match CompletionJournal::open(&dir, identity_of(&fx.config), 8) {
            Ok((_, replayed)) => {
                // Header survived: every replayed id is one the run journaled,
                // in order, never an invention of the torn tail.
                prop_assert!(keep >= 40, "a truncated header must not open");
                prop_assert!(replayed.len() <= (keep - 40) / 24);
                prop_assert!(replayed.iter().all(|id| *id < CLIENTS as u64));
            }
            Err(DurabilityError::Corrupt { .. }) => {
                prop_assert!(keep < 48, "whole-header journals must open (kept {keep})");
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
