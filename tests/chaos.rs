//! Chaos suite: seeded fault schedules driven end to end through the online
//! pipeline (§3.1 fault tolerance).
//!
//! Every test uses a *deterministic* fault plan — scripted client crashes and
//! hangs, a scripted server crash, scripted shard stalls — so the recovery
//! trace is reproducible: the same seed yields the same schedule, the same
//! retries, the same kills and the same accounting. The properties pinned
//! here are the robustness contract:
//!
//! * **No hang**: every run completes (each test finishing is the proof),
//!   even when clients die, hang, exhaust their retry budget, or the server
//!   itself crashes mid-run.
//! * **No double-count**: replayed traffic from restarted clients and
//!   resumed servers is discarded by the message logs; a sample is trained
//!   into the dataset exactly once.
//! * **Monotone accounting**: unique-sample and launcher counters stay
//!   consistent with the fault schedule.

use melissa::{ExperimentConfig, OnlineExperiment, WorkloadSpec};
use melissa_ensemble::{CampaignPlan, LauncherConfig, RetryPolicy, WatchdogConfig};
use melissa_transport::{FaultConfig, FaultPlan};
use std::time::Duration;
use training_buffer::{BufferConfig, BufferKind};

const CLIENTS: usize = 6;
const STEPS: usize = 10;

/// A small, fast experiment: 6 clients × 10 steps on an 8×8 grid.
fn chaos_config(kind: BufferKind, plan: FaultPlan) -> ExperimentConfig {
    ExperimentConfig::builder()
        .workload(WorkloadSpec::heat_analytic(heat_solver::SolverConfig {
            nx: 8,
            ny: 8,
            steps: STEPS,
            ..heat_solver::SolverConfig::default()
        }))
        .campaign(CampaignPlan::single_series(CLIENTS, 3))
        .buffer(BufferConfig {
            kind,
            capacity: 24,
            threshold: 4,
            seed: 7,
        })
        .batch_size(5)
        .validation(2, 4)
        .hidden_width(16)
        .seed(42)
        .fault(FaultConfig {
            plan,
            ..FaultConfig::default()
        })
        .launcher(LauncherConfig {
            retry: RetryPolicy {
                max_retries: 3,
                base_backoff: Duration::from_millis(2),
                ..RetryPolicy::default()
            },
            watchdog: Some(WatchdogConfig::with_deadline(Duration::from_millis(100))),
            ..LauncherConfig::default()
        })
        .build()
        .expect("consistent chaos configuration")
}

/// The number of scripted faults (crashes + hangs) and hangs in a plan,
/// derived by probing every (client, attempt-0) slot.
fn plan_faults(plan: &FaultPlan) -> (usize, usize, Vec<u64>) {
    let mut faulted = Vec::new();
    let mut hangs = 0;
    for client_id in 0..CLIENTS as u64 {
        if let Some(fault) = plan.client_fault(client_id, 0) {
            faulted.push(client_id);
            if matches!(fault.kind, melissa_transport::ClientFaultKind::Hang) {
                hangs += 1;
            }
        }
    }
    (faulted.len(), hangs, faulted)
}

#[test]
fn seeded_chaos_completes_across_all_buffer_policies() {
    for kind in BufferKind::ALL {
        let plan = FaultPlan::seeded_chaos(11, CLIENTS as u64, STEPS);
        let (faults, hangs, faulted) = plan_faults(&plan);
        assert!(faults >= 1, "seed 11 must script at least one fault");

        let config = chaos_config(kind, plan);
        let (model, report) = OnlineExperiment::new(config)
            .expect("valid chaos configuration")
            .run();

        // No hang: the run completed and produced a finite model.
        assert!(
            model.params_flat().iter().all(|p| p.is_finite()),
            "{kind:?}"
        );
        assert!(!report.crashed, "{kind:?}: no server fault was scripted");

        // Detection and retry: every scripted fault hits attempt 0 only, so
        // every faulted client recovers on its retry — none is abandoned.
        let launcher = report
            .launcher
            .as_ref()
            .expect("online runs log a campaign");
        assert_eq!(launcher.completed, CLIENTS, "{kind:?}");
        assert_eq!(launcher.retries, faults, "{kind:?}: one retry per fault");
        assert_eq!(
            launcher.watchdog_kills, hangs,
            "{kind:?}: one kill per hang"
        );
        assert!(report.abandoned_clients.is_empty(), "{kind:?}");
        assert_eq!(report.recovered_clients, faulted, "{kind:?}");

        // No double-count: replays of the restarted clients' earlier steps
        // are discarded by the message logs, so the unique-sample count never
        // exceeds what the campaign produces.
        let total_unique = CLIENTS * STEPS;
        assert!(
            report.unique_samples_trained <= total_unique,
            "{kind:?}: {} unique trained > {} produced",
            report.unique_samples_trained,
            total_unique
        );
        assert!(report.unique_samples_trained > 0, "{kind:?}");

        // Monotone accounting: consumed counts repetitions, so it bounds the
        // unique count from above.
        assert!(
            report.samples_trained >= report.unique_samples_trained,
            "{kind:?}"
        );

        // The transport saw the replayed traffic (restarted clients resend
        // from sequence zero), and every sent message was delivered — the
        // discarding happens in the server's message log, not in transit.
        let transport = report.transport.as_ref().expect("online runs have stats");
        assert!(transport.messages_sent >= total_unique, "{kind:?}");
        assert_eq!(
            transport.messages_delivered, transport.messages_sent,
            "{kind:?}: no drops were scripted"
        );
    }
}

#[test]
fn same_seed_yields_the_same_recovery_trace() {
    let runs: Vec<_> = (0..2)
        .map(|_| {
            let plan = FaultPlan::seeded_chaos(23, CLIENTS as u64, STEPS);
            let config = chaos_config(BufferKind::Fifo, plan);
            let (_, report) = OnlineExperiment::new(config)
                .expect("valid chaos configuration")
                .run();
            report
        })
        .collect();

    let (a, b) = (&runs[0], &runs[1]);
    let (la, lb) = (
        a.launcher.as_ref().expect("campaign"),
        b.launcher.as_ref().expect("campaign"),
    );
    assert_eq!(la.completed, lb.completed);
    assert_eq!(la.retries, lb.retries);
    assert_eq!(la.watchdog_kills, lb.watchdog_kills);
    assert_eq!(a.abandoned_clients, b.abandoned_clients);
    assert_eq!(a.recovered_clients, b.recovered_clients);
    // FIFO trains every accepted sample exactly once, so the dedup'd sample
    // set — and with it the unique count — is reproducible.
    assert_eq!(a.unique_samples_trained, b.unique_samples_trained);
}

#[test]
fn watchdog_declares_a_hung_client_dead_and_the_run_completes() {
    let plan = FaultPlan::none().with_client_hang(2, 0, 3);
    let config = chaos_config(BufferKind::Reservoir, plan);
    let (_, report) = OnlineExperiment::new(config)
        .expect("valid chaos configuration")
        .run();

    let launcher = report.launcher.as_ref().expect("campaign");
    assert_eq!(launcher.watchdog_kills, 1, "the hang must be killed");
    assert_eq!(launcher.completed, CLIENTS);
    assert_eq!(report.recovered_clients, vec![2]);
    assert!(report.abandoned_clients.is_empty());
    // The watchdog (100 ms deadline), not the hang's 5 s safety cap, must be
    // what ended the hang — otherwise the run would take at least 5 s.
    assert!(
        report.total_seconds < 4.0,
        "run took {:.1}s: the watchdog did not fire",
        report.total_seconds
    );
}

#[test]
fn retry_exhaustion_abandons_the_client_instead_of_hanging() {
    // Client 1 crashes after 2 steps on every attempt it gets (initial + 2
    // retries), so the launcher must abandon it and the reception gate must
    // stop waiting for its finalize.
    let plan = FaultPlan::none()
        .with_client_crash(1, 0, 2)
        .with_client_crash(1, 1, 2)
        .with_client_crash(1, 2, 2);
    let mut config = chaos_config(BufferKind::Fifo, plan);
    config.launcher.retry.max_retries = 2;
    let (_, report) = OnlineExperiment::new(config)
        .expect("valid chaos configuration")
        .run();

    let launcher = report.launcher.as_ref().expect("campaign");
    assert_eq!(report.abandoned_clients, vec![1]);
    assert_eq!(launcher.completed, CLIENTS - 1);
    assert_eq!(launcher.retries, 2, "both retries were spent");
    assert!(report.recovered_clients.is_empty());

    // Exactly-once accounting under abandonment: the surviving clients'
    // samples are all trained once (FIFO), plus the 2 steps client 1 managed
    // to stream on its first attempt — its retries replayed the same two
    // sequence numbers, which the message log discarded.
    let total_unique = (CLIENTS - 1) * STEPS + 2;
    assert_eq!(report.unique_samples_trained, total_unique);
}

#[test]
fn scripted_shard_stall_delays_but_loses_nothing() {
    let plan = FaultPlan::none().with_shard_stall(0, 0, 5, Duration::from_millis(50));
    let config = chaos_config(BufferKind::Fifo, plan);
    let (_, report) = OnlineExperiment::new(config)
        .expect("valid chaos configuration")
        .run();

    // The stall is latency, not loss: every produced sample still arrives
    // and is trained exactly once.
    assert_eq!(report.unique_samples_trained, CLIENTS * STEPS);
    let launcher = report.launcher.as_ref().expect("campaign");
    assert_eq!(launcher.completed, CLIENTS);
    assert!(report.abandoned_clients.is_empty());
}

#[test]
fn server_crash_resume_reruns_only_missing_sims_with_exactly_once_accounting() {
    // One rank, FIFO, checkpoints every 2 batches, server killed after 8
    // batches with data (40 of the 60 samples consumed).
    let crash_plan = FaultPlan::none().with_server_crash(8);
    let mut config = chaos_config(BufferKind::Fifo, crash_plan);
    config.checkpoint_every_batches = 2;
    let (_, crash_report, checkpoint) = OnlineExperiment::new(config)
        .expect("valid chaos configuration")
        .run_recoverable();

    assert!(crash_report.crashed, "the scripted server crash must fire");
    assert!(crash_report.checkpoints_taken >= 1);
    let checkpoint = checkpoint.expect("checkpoints were being captured");
    assert!(
        !checkpoint.completed_simulations.is_empty(),
        "8 consumed batches must cover at least one full simulation"
    );

    // The checkpoint's completed set and the missing set partition the
    // campaign.
    let missing = checkpoint.missing_simulations(CLIENTS as u64);
    let mut union: Vec<u64> = checkpoint
        .completed_simulations
        .iter()
        .copied()
        .chain(missing.iter().copied())
        .collect();
    union.sort_unstable();
    assert_eq!(union, (0..CLIENTS as u64).collect::<Vec<_>>());

    // Restart from the checkpoint with a fault-free plan (the crash already
    // happened) and the same experiment configuration.
    let mut resumed_config = chaos_config(BufferKind::Fifo, FaultPlan::none());
    resumed_config.checkpoint_every_batches = 2;
    let (model, resume_report, final_checkpoint) = OnlineExperiment::new(resumed_config)
        .expect("valid chaos configuration")
        .resume(&checkpoint);

    assert!(!resume_report.crashed, "the resumed run completes");
    assert!(model.params_flat().iter().all(|p| p.is_finite()));
    assert_eq!(
        resume_report.resumed_from_batches,
        Some(checkpoint.batches_trained)
    );

    // Only the missing simulations were resubmitted: the transport of the
    // resumed run carries exactly their traffic, nothing from the completed
    // ones.
    let transport = resume_report.transport.as_ref().expect("online stats");
    assert_eq!(
        transport.messages_sent,
        missing.len() * STEPS,
        "only missing simulations rerun"
    );

    // Exactly-once accounting: the resumed run trains each missing
    // simulation's samples exactly once (FIFO), and nothing from the
    // checkpoint-completed simulations.
    assert_eq!(
        resume_report.unique_samples_trained,
        missing.len() * STEPS,
        "completed simulations must not be retrained"
    );

    // The final checkpoint of the resumed run carries the union forward:
    // every simulation of the campaign is now covered.
    let final_checkpoint = final_checkpoint.expect("the clean run leaves a checkpoint");
    assert_eq!(
        final_checkpoint.completed_simulations,
        (0..CLIENTS as u64).collect::<Vec<_>>(),
        "exactly-once per-simulation accounting across the crash"
    );
    assert!(final_checkpoint.batches_trained > checkpoint.batches_trained);
}

#[test]
fn reservoir_eviction_does_not_force_needless_reruns_after_a_crash() {
    // A Reservoir far smaller than the 60 produced samples: trained samples
    // are evicted throughout the run to make room. Eviction of an
    // already-trained sample must not un-complete its simulation — the
    // per-simulation accounting tracks trained steps, not buffer residency —
    // so the checkpoint taken before the crash still marks fully-trained
    // simulations complete and the resume reruns only the genuinely open
    // ones.
    //
    // How many simulations are fully trained by batch N depends on the
    // producer/consumer interleaving (the Reservoir draws from whatever has
    // arrived), so scan crash points until one leaves a checkpoint that is
    // partially complete — some simulations done, some still open.
    let mut partial = None;
    for crash_after in [10, 12, 14, 16, 18] {
        let crash_plan = FaultPlan::none().with_server_crash(crash_after);
        let mut config = chaos_config(BufferKind::Reservoir, crash_plan);
        config.buffer.capacity = 12;
        config.checkpoint_every_batches = 2;
        let (_, crash_report, checkpoint) = OnlineExperiment::new(config)
            .expect("valid chaos configuration")
            .run_recoverable();
        if !crash_report.crashed {
            break; // later crash points only fire even later
        }
        let Some(checkpoint) = checkpoint else {
            continue;
        };
        let completed = checkpoint.completed_simulations.len();
        if (1..CLIENTS).contains(&completed) {
            partial = Some(checkpoint);
            break;
        }
    }
    let checkpoint = partial.expect(
        "some crash point must catch the run with trained-and-evicted \
         simulations complete and others still open",
    );
    let missing = checkpoint.missing_simulations(CLIENTS as u64);

    let mut resumed_config = chaos_config(BufferKind::Reservoir, FaultPlan::none());
    resumed_config.buffer.capacity = 12;
    resumed_config.checkpoint_every_batches = 2;
    let (model, resume_report, final_checkpoint) = OnlineExperiment::new(resumed_config)
        .expect("valid chaos configuration")
        .resume(&checkpoint);

    assert!(!resume_report.crashed, "the resumed run completes");
    assert!(model.params_flat().iter().all(|p| p.is_finite()));
    // No needless re-simulation: the transport of the resumed run carries
    // exactly the missing simulations' traffic, nothing from the completed
    // (and partially evicted) ones.
    let transport = resume_report.transport.as_ref().expect("online stats");
    assert_eq!(
        transport.messages_sent,
        missing.len() * STEPS,
        "evicted-but-trained simulations must not rerun"
    );
    let final_checkpoint = final_checkpoint.expect("the clean run leaves a checkpoint");
    assert_eq!(
        final_checkpoint.completed_simulations,
        (0..CLIENTS as u64).collect::<Vec<_>>(),
        "exactly-once per-simulation accounting despite eviction"
    );
}

#[test]
fn server_crash_without_checkpointing_still_terminates_gracefully() {
    let plan = FaultPlan::none().with_server_crash(4);
    let config = chaos_config(BufferKind::Firo, plan);
    let (_, report, checkpoint) = OnlineExperiment::new(config)
        .expect("valid chaos configuration")
        .run_recoverable();

    // The crash fires, nothing was checkpointed — and the run still winds
    // down instead of deadlocking on blocked producers.
    assert!(report.crashed);
    assert_eq!(report.checkpoints_taken, 0);
    assert!(checkpoint.is_none());
}
