//! Integration tests that assemble the substrates by hand (workload →
//! transport → buffer → network), checking the contracts between crates
//! without going through the high-level `OnlineExperiment` driver. The data
//! source is driven exclusively through the physics-agnostic `Workload` trait.

use heat_solver::{SolverConfig, SyntheticWorkload};
use melissa::{payload_to_sample, step_to_payload};
use melissa_transport::{ClientApi, Fabric, FabricConfig, Message, MessageLog};
use melissa_workload::{ParamPoint, Workload};
use std::sync::Arc;
use surrogate_nn::{
    Adam, AdamConfig, Batch, InputNormalizer, Loss, Mlp, MlpConfig, MseLoss, Optimizer,
    OutputNormalizer,
};
use training_buffer::{ReservoirBuffer, TrainingBuffer};

fn solver_config() -> SolverConfig {
    SolverConfig {
        nx: 8,
        ny: 8,
        steps: 12,
        ..SolverConfig::default()
    }
}

#[test]
fn workload_to_transport_to_buffer_to_network_pipeline() {
    let config = solver_config();
    let workload = SyntheticWorkload::solver(config);
    let input_norm = InputNormalizer::for_trajectory(config.steps, config.dt);
    let output_norm = OutputNormalizer::default();

    // Two clients stream their trajectories to a 2-rank fabric.
    let fabric = Fabric::new(FabricConfig {
        num_server_ranks: 2,
        channel_capacity: 512,
        ..FabricConfig::default()
    });
    let endpoints = fabric.server_endpoints();
    for client_id in 0..2u64 {
        let params: ParamPoint = [300.0 + client_id as f64 * 50.0, 150.0, 250.0, 350.0, 450.0];
        let connection = ClientApi::init_communication(&fabric, client_id);
        Workload::generate(&workload, params, &mut |step| {
            connection.send(step_to_payload(&step, client_id)).unwrap();
        })
        .unwrap();
        ClientApi::finalize_communication(connection).unwrap();
    }

    // Each rank aggregates its share into a Reservoir and trains a tiny MLP.
    let mut total_accepted = 0;
    for endpoint in &endpoints {
        let buffer = ReservoirBuffer::new(64, 2, 1);
        let mut log = MessageLog::new();
        while let Some(message) = endpoint.try_recv() {
            match message {
                Message::TimeStep {
                    client_id,
                    sequence,
                    payload,
                } => {
                    assert!(log.observe(client_id, sequence));
                    buffer.put(payload_to_sample(&payload, &input_norm, &output_norm));
                    total_accepted += 1;
                }
                Message::Finalize { client_id, .. } => log.mark_finalized(client_id),
                Message::Connect { .. } => {}
            }
        }
        assert_eq!(log.finalized_clients(), 2);
        buffer.mark_reception_over();

        let mut model = Mlp::new(MlpConfig::small(6, 16, 64, 3));
        let mut optimizer = Adam::new(AdamConfig::default(), model.param_count());
        let mut samples = Vec::new();
        while let Some(s) = buffer.get() {
            samples.push(s);
            if samples.len() == 4 {
                let batch = Batch::from_owned(&samples);
                let prediction = model.forward(&batch.inputs);
                let (loss, grad) = MseLoss.evaluate(&prediction, &batch.targets);
                assert!(loss.is_finite());
                model.zero_grads();
                model.backward(&grad);
                let grads = model.grads_flat();
                optimizer.step(&mut model, &grads, 1e-3);
                samples.clear();
            }
        }
        assert!(optimizer.steps_taken() > 0);
    }
    // Round-robin: both ranks together received every step exactly once.
    assert_eq!(total_accepted, 2 * solver_config().steps);
}

#[test]
fn restarted_client_is_deduplicated_across_the_full_stack() {
    let config = solver_config();
    let workload = SyntheticWorkload::solver(config);
    let params: ParamPoint = [400.0, 100.0, 200.0, 300.0, 500.0];
    let fabric = Fabric::new(FabricConfig::default());
    let endpoint = fabric.server_endpoints().remove(0);

    // Determinism across attempts: a restarted client replays an identical
    // stream, which is exactly what the message log relies on.
    let trajectory = Workload::trajectory(&workload, params).unwrap();
    assert_eq!(trajectory, Workload::trajectory(&workload, params).unwrap());

    // First attempt: the client "crashes" after 5 steps.
    let connection = fabric.connect_client(9);
    for step in trajectory.iter().take(5) {
        connection.send(step_to_payload(step, 9)).unwrap();
    }
    drop(connection);

    // Restart: the client replays the whole trajectory from the beginning.
    let connection = fabric.connect_client(9);
    for step in &trajectory {
        connection.send(step_to_payload(step, 9)).unwrap();
    }
    connection.finalize().unwrap();

    let mut log = MessageLog::new();
    let mut accepted = 0;
    let mut discarded = 0;
    while let Some(message) = endpoint.try_recv() {
        if let Message::TimeStep {
            client_id,
            sequence,
            ..
        } = message
        {
            if log.observe(client_id, sequence) {
                accepted += 1;
            } else {
                discarded += 1;
            }
        }
    }
    assert_eq!(
        accepted, config.steps,
        "each unique step accepted exactly once"
    );
    assert_eq!(discarded, 5, "the replayed prefix is discarded");
}

#[test]
fn buffer_is_shareable_between_producer_and_consumer_threads() {
    // The aggregator/trainer threading contract: one producer thread, one
    // consumer thread, one shared buffer, clean termination.
    let config = solver_config();
    let params: ParamPoint = [250.0, 150.0, 350.0, 450.0, 200.0];
    let input_norm = InputNormalizer::for_trajectory(config.steps, config.dt);
    let output_norm = OutputNormalizer::default();
    let buffer: Arc<ReservoirBuffer<surrogate_nn::Sample>> =
        Arc::new(ReservoirBuffer::new(32, 4, 2));

    let producer = {
        let buffer = Arc::clone(&buffer);
        std::thread::spawn(move || {
            let workload = SyntheticWorkload::solver(config);
            Workload::generate(&workload, params, &mut |step| {
                let payload = step_to_payload(&step, 0);
                buffer.put(payload_to_sample(&payload, &input_norm, &output_norm));
            })
            .unwrap();
            buffer.mark_reception_over();
        })
    };
    let consumer = {
        let buffer = Arc::clone(&buffer);
        std::thread::spawn(move || {
            let mut count = 0;
            while buffer.get().is_some() {
                count += 1;
            }
            count
        })
    };
    producer.join().unwrap();
    let consumed = consumer.join().unwrap();
    assert!(
        consumed >= config.steps,
        "at least every unique step is served"
    );
    assert_eq!(buffer.len(), 0);
}
