//! Cross-crate integration tests: full online and offline experiments through
//! the public API of the workspace crates.

use heat_solver::SolverConfig;
use melissa::{
    DiskConfig, ExperimentConfig, OfflineExperiment, OnlineExperiment, ServerCheckpoint,
    WorkloadSpec,
};
use melissa_ensemble::CampaignPlan;
use melissa_transport::FaultConfig;
use surrogate_nn::Matrix;
use training_buffer::{BufferConfig, BufferKind};

fn base_config(simulations: usize, kind: BufferKind, num_ranks: usize) -> ExperimentConfig {
    ExperimentConfig::builder()
        .workload(WorkloadSpec::heat_analytic(SolverConfig {
            nx: 8,
            ny: 8,
            steps: 10,
            ..SolverConfig::default()
        }))
        .campaign(CampaignPlan::single_series(simulations, 3))
        .buffer(BufferConfig {
            kind,
            capacity: 40,
            threshold: 8,
            seed: 5,
        })
        .ranks(num_ranks)
        .batch_size(5)
        .validation(2, 5)
        .hidden_width(16)
        .build()
        .expect("consistent test configuration")
}

#[test]
fn online_training_processes_every_sample_for_each_buffer() {
    for kind in BufferKind::ALL {
        let config = base_config(5, kind, 1);
        let (model, report) = OnlineExperiment::new(config).unwrap().run();
        assert!(model.params_flat().iter().all(|p| p.is_finite()));
        assert_eq!(report.unique_samples_produced, 50);
        assert_eq!(report.unique_samples_trained, 50, "{kind:?}");
        if kind != BufferKind::Reservoir {
            // FIFO/FIRO never repeat: consumed == produced.
            assert_eq!(report.samples_trained, 50, "{kind:?}");
        } else {
            assert!(report.samples_trained >= 50);
        }
        assert!(report.min_validation_mse.unwrap() > 0.0);
    }
}

#[test]
fn online_training_with_multiple_ranks_balances_data() {
    let config = base_config(6, BufferKind::Reservoir, 3);
    let (_, report) = OnlineExperiment::new(config).unwrap().run();
    assert_eq!(report.buffer_stats.len(), 3);
    let total_puts: usize = report.buffer_stats.iter().map(|s| s.puts).sum();
    assert_eq!(
        total_puts, 60,
        "round-robin delivers every sample to some rank"
    );
    for stats in &report.buffer_stats {
        // 6 clients × 10 steps round-robined over 3 ranks → 20 per rank.
        assert_eq!(stats.puts, 20);
    }
}

#[test]
fn offline_training_is_deterministic_for_a_fixed_seed() {
    let run = || {
        let config = base_config(4, BufferKind::Reservoir, 1);
        let (model, report) = OfflineExperiment::new(config, DiskConfig::default(), 2)
            .unwrap()
            .run();
        (model.params_flat(), report.samples_trained)
    };
    let (params_a, samples_a) = run();
    let (params_b, samples_b) = run();
    assert_eq!(samples_a, samples_b);
    assert_eq!(
        params_a, params_b,
        "offline training must be bit-reproducible"
    );
}

#[test]
fn online_and_offline_see_the_same_generated_data() {
    let config = base_config(4, BufferKind::Fifo, 1);
    let (_, online) = OnlineExperiment::new(config.clone()).unwrap().run();
    let (_, offline) = OfflineExperiment::new(config, DiskConfig::default(), 1)
        .unwrap()
        .run();
    assert_eq!(
        online.unique_samples_produced,
        offline.unique_samples_produced
    );
    assert_eq!(
        online.unique_samples_trained,
        offline.unique_samples_trained
    );
    // Offline pays a separate generation phase; online overlaps it with training.
    assert!(offline.generation_seconds.is_some());
    assert!(online.generation_seconds.is_none());
}

#[test]
fn transport_faults_do_not_break_training() {
    let mut config = base_config(6, BufferKind::Reservoir, 1);
    config.fault = FaultConfig {
        drop_probability: 0.1,
        duplicate_probability: 0.1,
        seed: 3,
        ..FaultConfig::default()
    };
    let (_, report) = OnlineExperiment::new(config).unwrap().run();
    let transport = report.transport.unwrap();
    assert!(transport.messages_dropped > 0 || transport.messages_duplicated > 0);
    // Duplicated messages must not inflate the unique-sample count.
    assert!(report.unique_samples_trained <= report.unique_samples_produced);
    assert!(report.min_validation_mse.is_some());
}

#[test]
fn checkpoint_restores_an_equivalent_model() {
    let config = base_config(4, BufferKind::Reservoir, 1);
    let (model, report) = OnlineExperiment::new(config.clone()).unwrap().run();
    let checkpoint = ServerCheckpoint::capture(
        &model,
        report.batches,
        report.samples_trained,
        (0..4).collect(),
        config.seed,
    );
    let restored = ServerCheckpoint::from_json(&checkpoint.to_json().unwrap())
        .unwrap()
        .restore_model();
    let probe = Matrix::from_rows(&[vec![0.3, 0.5, 0.7, 0.2, 0.9, 0.5]]);
    assert_eq!(model.predict(&probe), restored.predict(&probe));
    assert!(checkpoint.missing_simulations(6).len() == 2);
}

#[test]
fn reservoir_multi_rank_run_reports_throughput_and_occurrences() {
    let config = base_config(6, BufferKind::Reservoir, 2);
    let (_, report) = OnlineExperiment::new(config).unwrap().run();
    assert!(report.mean_throughput > 0.0);
    let histogram = &report.metrics.occurrences;
    assert_eq!(histogram.unique_samples(), 60);
    assert!(histogram.mean_repetitions() >= 1.0);
    assert!(!report.metrics.occupancy.is_empty());
}
