//! Fast workspace-wiring smoke test.
//!
//! Runs one tiny `OnlineExperiment` end-to-end for each shipped physics (8×8
//! grid, 10 steps, 4 clients) so CI catches pipeline breakage in well under a
//! second without paying the cost of the full `end_to_end.rs` suite.

use heat_solver::SolverConfig;
use melissa::{ExperimentConfig, OnlineExperiment, WorkloadSpec};
use melissa_ensemble::CampaignPlan;
use melissa_workload::AdvectionConfig;
use surrogate_nn::Matrix;

#[test]
fn tiny_online_experiment_runs_end_to_end() {
    let config = ExperimentConfig::builder()
        .workload(WorkloadSpec::heat_analytic(SolverConfig {
            nx: 8,
            ny: 8,
            steps: 10,
            ..SolverConfig::default()
        }))
        .campaign(CampaignPlan::single_series(4, 2))
        .build()
        .expect("config must validate");

    let experiment = OnlineExperiment::new(config.clone()).expect("config must validate");
    let (model, report) = experiment.run();

    // The wiring claim: every produced sample crossed solver → transport →
    // buffer → trainer, and a usable model came out the other side.
    let expected_samples = 4 * config.workload.steps();
    assert_eq!(
        report.unique_samples_trained, expected_samples,
        "all produced samples must reach the trainer"
    );
    assert!(report.batches > 0, "the training loop must have run");
    let probe = Matrix::from_vec(1, 6, vec![0.5; 6]);
    let prediction = model.predict(&probe);
    assert_eq!(
        prediction.data().len(),
        64,
        "surrogate must map onto the 8×8 grid"
    );
    assert!(
        prediction.data().iter().all(|v| v.is_finite()),
        "predictions must be finite"
    );
    // Speed is kept by construction (8×8 grid, 10 steps, ~20 ms in debug);
    // no wall-clock assertion here — timing asserts are flaky on loaded CI.
}

#[test]
fn tiny_advection_experiment_runs_end_to_end() {
    // The same pipeline, untouched, on the second physics: the acceptance
    // smoke test for the physics-agnostic Workload seam.
    let config = ExperimentConfig::builder()
        .workload(WorkloadSpec::advection_analytic(AdvectionConfig {
            nx: 8,
            ny: 8,
            steps: 10,
            ..AdvectionConfig::default()
        }))
        .campaign(CampaignPlan::single_series(4, 2))
        .validation(2, 4)
        .build()
        .expect("config must validate");

    let (model, report) = OnlineExperiment::new(config).expect("valid config").run();
    assert_eq!(report.unique_samples_trained, 40);
    let final_mse = report
        .final_validation_mse
        .expect("validation must have run");
    assert!(
        final_mse.is_finite() && final_mse >= 0.0,
        "advection validation loss must be finite, got {final_mse}"
    );
    assert!(model.params_flat().iter().all(|p| p.is_finite()));
}
