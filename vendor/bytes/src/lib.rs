//! Vendored stand-in for the `bytes` crate.
//!
//! [`BytesMut`] is a growable buffer implementing [`BufMut`]; freezing it
//! yields a cheaply-cloneable [`Bytes`] (shared `Arc` storage) implementing
//! the cursor-style [`Buf`] reader. Multi-byte accessors are big-endian, like
//! the upstream crate.

use std::sync::Arc;

/// Read side: a cursor over a byte sequence.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `count` bytes.
    fn advance(&mut self, count: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let value = self.chunk()[0];
        self.advance(1);
        value
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_array())
    }

    /// Copies out the next `N` bytes (helper for the fixed-width getters).
    #[doc(hidden)]
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, bytes: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `f32`.
    fn put_f32(&mut self, value: f32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, value: f64) {
        self.put_slice(&value.to_be_bytes());
    }
}

/// A cheaply-cloneable, immutable byte sequence with a read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
}

impl Bytes {
    /// An empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static slice (copied here; the upstream crate borrows it).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Self {
            data: bytes.into(),
            start: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True when fully consumed (or empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "advance past end of Bytes");
        self.start += count;
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        Self {
            data: vec.into(),
            start: 0,
        }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.vec.extend_from_slice(bytes);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_roundtrip() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(u64::MAX - 3);
        buf.put_f32(1.5);
        buf.put_f64(-2.25);
        let mut frozen = buf.freeze();
        assert_eq!(frozen.remaining(), 1 + 4 + 8 + 4 + 8);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64(), u64::MAX - 3);
        assert_eq!(frozen.get_f32(), 1.5);
        assert_eq!(frozen.get_f64(), -2.25);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn clones_have_independent_cursors() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u32(2);
        let mut a = buf.freeze();
        let mut b = a.clone();
        assert_eq!(a.get_u32(), 1);
        assert_eq!(b.get_u32(), 1);
        assert_eq!(a.get_u32(), 2);
        assert_eq!(b.get_u32(), 2);
    }
}
