//! Recursive-descent JSON parser producing [`serde::Value`] trees.

use serde::{Error, Value};

pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of JSON input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.consume_digits();
        if int_digits == 0 {
            return Err(Error::custom(format!("malformed number at byte {start}")));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.consume_digits() == 0 {
                return Err(Error::custom(format!("malformed number at byte {start}")));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.consume_digits() == 0 {
                return Err(Error::custom(format!("malformed number at byte {start}")));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans are ASCII")
            .to_owned();
        Ok(Value::Number(text))
    }

    fn consume_digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // parse_hex4 already advanced past the digits
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{:?}`",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses exactly four hex digits; leaves `pos` after them.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::custom("invalid \\u escape"))?;
        let unit =
            u32::from_str_radix(text, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.eat(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}
