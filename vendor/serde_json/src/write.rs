//! Compact JSON writer for [`serde::Value`] trees.

use serde::Value;

pub fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(n),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
