//! Vendored stand-in for `serde_json`: serialises the vendored
//! [`serde::Value`] data model to JSON text and parses it back.

mod read;
mod write;

pub use serde::Value;

/// Errors share the vendored serde error type.
pub type Error = serde::Error;

/// Serialises `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = read::parse(text)?;
    T::deserialize(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("-1.5e3").unwrap(), -1500.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string(&"a\"b\n".to_owned()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn u64_precision_is_preserved() {
        let big = u64::MAX - 1;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn f32_roundtrips_exactly() {
        for &x in &[0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 123456.78] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&json).unwrap(), x);
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(from_str::<Vec<u32>>(&to_string(&v).unwrap()).unwrap(), v);
        let opt: Option<f32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<f32>>("null").unwrap(), None);
        let mut map = std::collections::HashMap::new();
        map.insert(7u64, vec![1.0f64, 2.0]);
        let json = to_string(&map).unwrap();
        assert_eq!(
            from_str::<std::collections::HashMap<u64, Vec<f64>>>(&json).unwrap(),
            map
        );
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            from_str::<String>("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            "é😀"
        );
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
