//! Vendored stand-in for the `crossbeam` facade crate.
//!
//! Provides the two pieces the workspace uses:
//!
//! * [`scope`] — scoped threads whose closures receive the scope (crossbeam's
//!   signature), implemented over `std::thread::scope`;
//! * [`channel`] — bounded MPMC channels with blocking `send` / `recv`,
//!   `try_recv`, `recv_timeout` and disconnection semantics.

pub mod channel;
pub mod thread;

pub use thread::{scope, Scope, ScopedJoinHandle};
