//! Bounded MPMC channels with crossbeam's API, built on `std::sync`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Creates a bounded channel of the given capacity.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Blocks until there is room, then enqueues `value`. Fails when every
    /// receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if state.queue.len() < state.capacity {
                state.queue.push_back(value);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Enqueues without blocking, failing when full or disconnected.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if state.queue.len() >= state.capacity {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives. Fails when the channel is empty and
    /// every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`recv`](Self::recv) with an upper bound on the wait.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        if let Some(value) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Dequeues up to `max` queued messages into `out` (appended) without
    /// blocking, under a single channel lock and with a single wake-up of
    /// blocked senders — the batched counterpart of repeated
    /// [`try_recv`](Self::try_recv) for drain-style consumers. Returns the
    /// number of messages moved.
    pub fn recv_many(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut state = self.shared.lock();
        let take = state.queue.len().min(max);
        out.extend(state.queue.drain(..take));
        drop(state);
        if take > 0 {
            // Many slots freed at once: wake every blocked sender.
            self.shared.not_full.notify_all();
        }
        take
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator draining the channel until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.shared.lock();
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.shared.lock();
            state.receivers -= 1;
            state.receivers
        };
        if remaining == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// The message could not be delivered: every receiver is gone.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Non-blocking send failure.
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// The channel is empty and every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Non-blocking receive failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message was queued.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Bounded-wait receive failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The wait elapsed with no message.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn messages_arrive_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn send_blocks_until_room() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        handle.join().unwrap();
    }

    #[test]
    fn disconnection_is_observed() {
        let (tx, rx) = bounded::<u32>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = bounded::<u32>(1);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 9);
    }

    #[test]
    fn recv_many_drains_in_order_and_wakes_senders() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        // A sender blocked on the full channel must be woken by the drain.
        let blocked = thread::spawn(move || tx.send(4).unwrap());
        thread::sleep(Duration::from_millis(20));
        let mut out = Vec::new();
        assert_eq!(rx.recv_many(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        blocked.join().unwrap();
        assert_eq!(rx.recv_many(&mut out, 16), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        // Empty channel: nothing moved, nothing blocked.
        assert_eq!(rx.recv_many(&mut out, 16), 0);
        assert_eq!(rx.recv_many(&mut out, 0), 0);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = bounded(8);
        let n = 100;
        let collected = crate::scope(|s| {
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<u32> = consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            all
        })
        .unwrap();
        assert_eq!(collected, (0..n).collect::<Vec<u32>>());
    }
}
