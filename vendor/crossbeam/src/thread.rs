//! Scoped threads with crossbeam's API over `std::thread::scope`.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// A handle for spawning scoped threads; passed to the [`scope`] closure and
/// to every spawned closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives the
    /// scope so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Handle to join one scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its result (`Err` holds the
    /// panic payload if it panicked).
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

/// Runs `f` with a [`Scope`]; returns after all spawned threads finished.
///
/// `Err` carries the panic payload when the closure or an unjoined spawned
/// thread panicked — crossbeam's contract.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_can_borrow_locals() {
        let data = [1u32, 2, 3];
        let sum = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let result = scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(result, 42);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
