//! Vendored stand-in for `rand_chacha`: a real ChaCha8 block cipher driving
//! the vendored `rand` traits.
//!
//! The key-stream construction follows RFC 7539 (constants, 32-byte key, block
//! counter) with 8 rounds. Output is deterministic under a fixed seed but not
//! bit-compatible with the upstream crate; the workspace relies only on
//! determinism and statistical quality.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher with 8 rounds, used as a deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key and nonce material: constants ‖ key ‖ counter ‖ nonce.
    state: [u32; 16],
    /// The current key-stream block.
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means "exhausted".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter (12/13) and nonce (14/15) start at zero.
        Self {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be uncorrelated, {same}/64 equal");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64 000 bits, expect ~32 000 set; allow ±3%.
        assert!((31_000..33_000).contains(&ones), "bit balance off: {ones}");
    }
}
