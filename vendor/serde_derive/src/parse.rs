//! Hand-rolled parser for derive input token streams.
//!
//! Recognises `struct` / `enum` items with attributes, visibility markers and
//! the `#[serde(skip)]` / `#[serde(default)]` field attributes. Commas inside
//! generic types (`HashMap<u64, ClientLog>`) are handled by tracking angle
//! bracket depth; generic *containers* are rejected with a clear panic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed derive input.
pub struct Input {
    /// The container name.
    pub name: String,
    /// Struct or enum payload.
    pub data: Data,
}

pub enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

pub enum Fields {
    /// `struct Foo;` or a unit enum variant.
    Unit,
    /// `struct Foo(A, B);` — only the field count matters (types are inferred
    /// in the generated code).
    Tuple(usize),
    /// `struct Foo { a: A, … }`.
    Named(Vec<Field>),
}

pub struct Field {
    pub name: String,
    /// `#[serde(skip)]`: not serialised; deserialised via `Default`.
    pub skip: bool,
    /// `#[serde(default)]`: `Default` when the key is absent.
    pub default: bool,
}

pub struct Variant {
    pub name: String,
    pub fields: Fields,
}

/// Field attributes that matter to the generated code.
#[derive(Default)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

pub fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic containers are not supported (deriving on `{name}`)");
    }

    let data = match kind.as_str() {
        "struct" => Data::Struct(parse_struct_fields(&tokens, &mut pos)),
        "enum" => {
            let body = crate::group_tokens(
                tokens.get(pos).expect("serde derive: missing enum body"),
                Delimiter::Brace,
            );
            Data::Enum(parse_variants(&body))
        }
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    };

    Input { name, data }
}

/// Parses what follows a struct name: `{ … }`, `( … );` or `;`.
fn parse_struct_fields(tokens: &[TokenTree], pos: &mut usize) -> Fields {
    match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Named(parse_named_fields(&body))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Tuple(count_tuple_fields(&body))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("serde derive: unexpected struct body `{other:?}`"),
    }
}

/// Parses `name: Type, …` sequences, honouring field attributes.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = consume_attributes(tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(tokens, &mut pos);
        let name = expect_ident(tokens, &mut pos);
        expect_punct(tokens, &mut pos, ':');
        skip_type(tokens, &mut pos);
        // Optional trailing comma.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    fields
}

/// Counts top-level comma-separated entries of a tuple field list.
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for token in tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// Parses the variants of an enum body.
fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes(tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                Fields::Named(parse_named_fields(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                Fields::Tuple(count_tuple_fields(&body))
            }
            _ => Fields::Unit,
        };
        // Skip an optional explicit discriminant (`= expr`), then the comma.
        while pos < tokens.len()
            && !matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',')
        {
            pos += 1;
        }
        if pos < tokens.len() {
            pos += 1; // the comma
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Consumes `#[…]` attributes, extracting serde markers.
fn consume_attributes(tokens: &[TokenTree], pos: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        let body = crate::group_tokens(
            tokens
                .get(*pos)
                .expect("serde derive: dangling `#` in attribute"),
            Delimiter::Bracket,
        );
        *pos += 1;
        // Attributes look like `serde(skip)` / `serde(skip, default)`.
        if let Some(TokenTree::Ident(ident)) = body.first() {
            if ident.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = body.get(1) {
                    for token in args.stream() {
                        if let TokenTree::Ident(marker) = token {
                            match marker.to_string().as_str() {
                                "skip" => attrs.skip = true,
                                "default" => attrs.default = true,
                                other => {
                                    panic!("serde derive: unsupported serde attribute `{other}`")
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    attrs
}

fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    consume_attributes(tokens, pos);
}

/// Skips `pub`, `pub(crate)`, `pub(in …)` markers.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

/// Skips one type, stopping at a top-level comma or the end of input.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(ident)) => {
            *pos += 1;
            ident.to_string()
        }
        other => panic!("serde derive: expected identifier, found `{other:?}`"),
    }
}

fn expect_punct(tokens: &[TokenTree], pos: &mut usize, expected: char) {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == expected => *pos += 1,
        other => panic!("serde derive: expected `{expected}`, found `{other:?}`"),
    }
}
