//! Vendored stand-in for `serde_derive`.
//!
//! `syn`/`quote` are not available offline, so the derive input is parsed
//! directly from the `proc_macro` token stream by a small hand-rolled parser.
//! The supported shapes are exactly what the workspace uses:
//!
//! * structs with named fields (honouring `#[serde(skip)]` and
//!   `#[serde(default)]`),
//! * tuple structs (newtype and general),
//! * unit structs,
//! * enums with unit, newtype/tuple and struct variants (serialised with
//!   serde's externally-tagged representation).
//!
//! Generics are not supported; deriving on a generic type fails with a
//! compile error naming this limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{Fields, Variant};

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse::parse(input);
    let body = match &item.data {
        parse::Data::Struct(fields) => serialize_struct_body(fields, "self", true),
        parse::Data::Enum(variants) => serialize_enum_body(&item.name, variants),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}",
        name = item.name,
    )
    .parse()
    .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse::parse(input);
    let body = match &item.data {
        parse::Data::Struct(fields) => deserialize_struct_body(&item.name, fields),
        parse::Data::Enum(variants) => deserialize_enum_body(&item.name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}",
        name = item.name,
    )
    .parse()
    .expect("serde_derive generated invalid Deserialize impl")
}

/// Serialisation expression for struct-like fields.
///
/// `access` is how fields are reached: `"self"` generates `self.a` / `self.0`
/// (`direct` = true); anything else means match bindings `__f0, __f1, …` are
/// in scope (`direct` = false, used for enum variants).
fn serialize_struct_body(fields: &Fields, access: &str, direct: bool) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_owned(),
        Fields::Tuple(count) => {
            let element = |idx: usize| {
                if direct {
                    format!("::serde::Serialize::serialize(&{access}.{idx})")
                } else {
                    format!("::serde::Serialize::serialize(__f{idx})")
                }
            };
            if *count == 1 {
                // Newtype: serialise transparently as the inner value.
                element(0)
            } else {
                let items: Vec<String> = (0..*count).map(element).collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        }
        Fields::Named(named) => {
            let mut out = String::from(
                "{ let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for field in named {
                if field.skip {
                    continue;
                }
                let value = if direct {
                    format!("::serde::Serialize::serialize(&{access}.{})", field.name)
                } else {
                    format!("::serde::Serialize::serialize({})", field.name)
                };
                out.push_str(&format!(
                    "__obj.push((\"{name}\".to_owned(), {value}));\n",
                    name = field.name,
                ));
            }
            out.push_str("::serde::Value::Object(__obj) }");
            out
        }
    }
}

fn serialize_enum_body(enum_name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for variant in variants {
        let vname = &variant.name;
        match &variant.fields {
            Fields::Unit => {
                arms.push_str(&format!(
                    "{enum_name}::{vname} => ::serde::Value::Str(\"{vname}\".to_owned()),\n"
                ));
            }
            Fields::Tuple(count) => {
                let bindings: Vec<String> = (0..*count).map(|i| format!("__f{i}")).collect();
                let payload = serialize_struct_body(&variant.fields, "", false);
                arms.push_str(&format!(
                    "{enum_name}::{vname}({binds}) => ::serde::Value::Object(vec![(\
                     \"{vname}\".to_owned(), {payload})]),\n",
                    binds = bindings.join(", "),
                ));
            }
            Fields::Named(named) => {
                let bindings: Vec<&str> = named.iter().map(|f| f.name.as_str()).collect();
                let payload = serialize_struct_body(&variant.fields, "", false);
                arms.push_str(&format!(
                    "{enum_name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\
                     \"{vname}\".to_owned(), {payload})]),\n",
                    binds = bindings.join(", "),
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

/// Field initialiser list for a named-field constructor (`a: …, b: …`).
///
/// `source` is an expression of type `&::serde::Value` holding the object.
fn named_field_inits(container: &str, named: &[parse::Field], source: &str) -> String {
    let mut out = String::new();
    for field in named {
        let name = &field.name;
        if field.skip {
            out.push_str(&format!("{name}: ::core::default::Default::default(),\n"));
        } else if field.default {
            out.push_str(&format!(
                "{name}: match {source}.get(\"{name}\") {{\n\
                     Some(__v) => ::serde::Deserialize::deserialize(__v)?,\n\
                     None => ::core::default::Default::default(),\n\
                 }},\n"
            ));
        } else {
            out.push_str(&format!(
                "{name}: ::serde::Deserialize::deserialize({source}.get(\"{name}\")\
                 .ok_or_else(|| ::serde::Error::missing_field(\"{name}\", \"{container}\"))?)?,\n"
            ));
        }
    }
    out
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("let _ = value; Ok({name})"),
        Fields::Tuple(count) => {
            if *count == 1 {
                format!("Ok({name}(::serde::Deserialize::deserialize(value)?))")
            } else {
                let items: Vec<String> = (0..*count)
                    .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = value.as_array()\
                         .ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\"))?;\n\
                     if __items.len() != {count} {{\n\
                         return Err(::serde::Error::custom(format!(\
                             \"expected {count} elements for {name}, got {{}}\", __items.len())));\n\
                     }}\n\
                     Ok({name}({items}))",
                    items = items.join(", "),
                )
            }
        }
        Fields::Named(named) => {
            format!(
                "if value.as_object().is_none() {{\n\
                     return Err(::serde::Error::expected(\"object\", \"{name}\"));\n\
                 }}\n\
                 Ok({name} {{\n{inits}}})",
                inits = named_field_inits(name, named, "value"),
            )
        }
    }
}

fn deserialize_enum_body(enum_name: &str, variants: &[Variant]) -> String {
    let unit: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .collect();
    let data: Vec<&Variant> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .collect();

    let mut out = String::new();
    if !unit.is_empty() {
        out.push_str("if let Some(__s) = value.as_str() {\nreturn match __s {\n");
        for variant in &unit {
            let vname = &variant.name;
            out.push_str(&format!("\"{vname}\" => Ok({enum_name}::{vname}),\n"));
        }
        out.push_str(&format!(
            "__other => Err(::serde::Error::custom(format!(\
             \"unknown variant `{{__other}}` of {enum_name}\"))),\n}};\n}}\n"
        ));
    }
    if !data.is_empty() {
        out.push_str(
            "if let Some(__obj) = value.as_object() {\n\
             if __obj.len() == 1 {\n\
             let (__tag, __inner) = &__obj[0];\n\
             return match __tag.as_str() {\n",
        );
        for variant in &data {
            let vname = &variant.name;
            match &variant.fields {
                Fields::Unit => unreachable!("unit variants handled above"),
                Fields::Tuple(count) => {
                    if *count == 1 {
                        out.push_str(&format!(
                            "\"{vname}\" => Ok({enum_name}::{vname}(\
                             ::serde::Deserialize::deserialize(__inner)?)),\n"
                        ));
                    } else {
                        let items: Vec<String> = (0..*count)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                            .collect();
                        out.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __items = __inner.as_array()\
                                 .ok_or_else(|| ::serde::Error::expected(\"array\", \"{enum_name}::{vname}\"))?;\n\
                             if __items.len() != {count} {{\n\
                                 return Err(::serde::Error::custom(format!(\
                                     \"expected {count} elements for {enum_name}::{vname}, got {{}}\",\
                                     __items.len())));\n\
                             }}\n\
                             Ok({enum_name}::{vname}({items}))\n\
                             }}\n",
                            items = items.join(", "),
                        ));
                    }
                }
                Fields::Named(named) => {
                    out.push_str(&format!(
                        "\"{vname}\" => {{\n\
                         if __inner.as_object().is_none() {{\n\
                             return Err(::serde::Error::expected(\"object\", \"{enum_name}::{vname}\"));\n\
                         }}\n\
                         Ok({enum_name}::{vname} {{\n{inits}}})\n\
                         }}\n",
                        inits =
                            named_field_inits(&format!("{enum_name}::{vname}"), named, "__inner"),
                    ));
                }
            }
        }
        out.push_str(&format!(
            "__other => Err(::serde::Error::custom(format!(\
             \"unknown variant `{{__other}}` of {enum_name}\"))),\n}};\n}}\n}}\n"
        ));
    }
    out.push_str(&format!(
        "Err(::serde::Error::expected(\"a {enum_name} variant\", \"{enum_name}\"))"
    ));
    out
}

/// Returns the tokens inside the single delimiter group, panicking otherwise.
pub(crate) fn group_tokens(tree: &TokenTree, delimiter: Delimiter) -> Vec<TokenTree> {
    match tree {
        TokenTree::Group(g) if g.delimiter() == delimiter => g.stream().into_iter().collect(),
        other => panic!("serde derive: expected {delimiter:?} group, found `{other}`"),
    }
}
