//! Vendored stand-in for `parking_lot` built on `std::sync`.
//!
//! Provides the non-poisoning `Mutex` / `RwLock` / `Condvar` API the workspace
//! uses. Poisoning is neutralised by recovering the guard from a poisoned
//! lock — matching parking_lot's semantics, where a panicking holder does not
//! poison the lock.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning `lock()` API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard of a [`Mutex`].
///
/// The inner `Option` is only `None` transiently inside [`Condvar::wait`],
/// where ownership of the std guard moves through the wait call.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable operating on [`MutexGuard`]s.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let owned = guard.inner.take().expect("guard present before wait");
        guard.inner = Some(
            self.inner
                .wait(owned)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or until `timeout` elapses. Returns `true` when
    /// the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let owned = guard.inner.take().expect("guard present before wait");
        let (owned, result) = self
            .inner
            .wait_timeout(owned, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(owned);
        result.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (non-poisoning API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared-access RAII guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access RAII guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
            true
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        assert!(handle.join().unwrap());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        assert!(cv.wait_for(&mut guard, Duration::from_millis(10)));
    }
}
