//! Collection strategies (`prop::collection::vec`).

use crate::strategy::{SizeRange, Strategy};
use rand_chacha::ChaCha8Rng;

/// A strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
