//! Vendored stand-in for `proptest`.
//!
//! Supports the subset the workspace's property suites use: the [`proptest!`]
//! macro (with `#![proptest_config(…)]`), range strategies for integers and
//! floats, `prop::collection::vec`, `prop::sample::select`, `Just`,
//! `Strategy::prop_map`, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: inputs are drawn from a
//! deterministic per-case ChaCha stream (so failures reproduce run-to-run)
//! and failures panic with the case number.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything the test files import via `use proptest::prelude::*;`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! The `prop::` module-path alias used inside test bodies.
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, …) { body }` becomes
/// a `#[test]` running the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::case_rng(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}
