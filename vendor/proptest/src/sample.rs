//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A strategy choosing uniformly from a fixed list.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires at least one item");
    Select { items }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        self.items[rng.gen_range(0..self.items.len())].clone()
    }
}
