//! Test-run configuration and per-case RNG derivation.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration accepted by `#![proptest_config(…)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic RNG for one test case: seeded from the test name and the
/// case index so every property explores a distinct but reproducible stream.
pub fn case_rng(test_name: &str, case: u32) -> ChaCha8Rng {
    // FNV-1a over the test name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    ChaCha8Rng::seed_from_u64(hash ^ ((case as u64) << 32 | case as u64))
}
