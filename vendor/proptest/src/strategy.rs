//! The [`Strategy`] trait and the core strategy adapters.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        self.clone().sample_single(rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        self.clone().sample_single(rng)
    }
}

/// A strategy over a type's "natural" full range (`any::<bool>()`, …).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a natural full-range distribution for [`any`].
pub trait ArbitraryValue: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut ChaCha8Rng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut ChaCha8Rng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) strategy: S,
    pub(crate) map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut ChaCha8Rng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

/// Sizes accepted by `collection::vec`: a fixed length or a range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    pub(crate) min: usize,
    pub(crate) max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self {
            min: len,
            max_exclusive: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        Self {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        Self {
            min: *range.start(),
            max_exclusive: range.end() + 1,
        }
    }
}

impl SizeRange {
    pub(crate) fn pick(&self, rng: &mut ChaCha8Rng) -> usize {
        if self.min + 1 >= self.max_exclusive {
            self.min
        } else {
            rng.gen_range(self.min..self.max_exclusive)
        }
    }
}
