//! Vendored stand-in for `criterion`.
//!
//! Exposes the API surface the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`Bencher::iter`] / `iter_with_setup`,
//! [`BenchmarkId`] — and reports a simple mean time per iteration. There is
//! no statistical analysis; the point is that `cargo bench` runs and prints
//! comparable numbers without network access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            // Modest defaults: enough for stable means, fast enough for CI.
            measurement_time: Duration::from_millis(200),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line filtering is not
    /// implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Bounds the time spent measuring one benchmark (capped at 1s so
    /// vendored benches stay quick even with upstream-tuned settings).
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time.min(Duration::from_secs(1));
        self
    }

    /// Sets the sample count.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Accepted for API compatibility; the vendored harness has no warm-up
    /// phase beyond the first discarded calibration sample.
    pub fn warm_up_time(self, _time: Duration) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl Display, mut routine: impl FnMut(&mut Bencher)) {
        let label = name.to_string();
        let (mean, iterations) = run_bench(self.measurement_time, self.sample_size, &mut routine);
        report(&label, mean, iterations);
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Bounds the time spent measuring one benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        // Cap so vendored benches stay quick even with upstream-tuned settings.
        self.measurement_time = time.min(Duration::from_secs(1));
        self
    }

    /// Accepted for API compatibility; the vendored harness has no warm-up
    /// phase beyond the first discarded sample.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let (mean, iterations) = run_bench(self.measurement_time, self.sample_size, &mut routine);
        report(&label, mean, iterations);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let (mean, iterations) =
            run_bench(self.measurement_time, self.sample_size, &mut |bencher| {
                routine(bencher, input)
            });
        report(&label, mean, iterations);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: parameter.to_string(),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.function {
            Some(function) => write!(f, "{}/{}", function, self.parameter),
            None => f.write_str(&self.parameter),
        }
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to every benchmark routine; runs and times the measured closure.
pub struct Bencher {
    /// Iterations the harness asks for in the current sample.
    iterations: u64,
    /// Time the measured closure consumed in the current sample.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iterations` times.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_with_setup<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
    ) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Runs one benchmark: calibrates an iteration count, then averages samples.
/// Returns (mean time per iteration, total iterations).
fn run_bench(
    measurement_time: Duration,
    sample_size: usize,
    routine: &mut impl FnMut(&mut Bencher),
) -> (Duration, u64) {
    // Calibration: one iteration, discarded (also serves as warm-up).
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let calibration = bencher.elapsed.max(Duration::from_nanos(1));

    // Pick a per-sample iteration count that fits the time budget.
    let budget_per_sample = measurement_time / (sample_size as u32);
    let iterations =
        (budget_per_sample.as_nanos() / calibration.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iterations = 0u64;
    for _ in 0..sample_size {
        bencher.iterations = iterations;
        routine(&mut bencher);
        total += bencher.elapsed;
        total_iterations += iterations;
    }
    (total / (total_iterations.max(1) as u32), total_iterations)
}

fn report(label: &str, mean: Duration, iterations: u64) {
    println!(
        "bench: {label:<60} {:>12.1} ns/iter ({iterations} iterations)",
        mean.as_nanos() as f64
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $group;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
