//! The single error type shared by serialisation and deserialisation.

/// Error produced when a [`crate::Value`] tree cannot be converted to the
/// requested type, or when JSON text is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with an arbitrary message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Error for a struct field absent from the serialised object.
    pub fn missing_field(field: &str, container: &str) -> Self {
        Self::custom(format!("missing field `{field}` in `{container}`"))
    }

    /// Error for a [`crate::Value`] of the wrong kind.
    pub fn expected(what: &str, context: &str) -> Self {
        Self::custom(format!("expected {what} for {context}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
