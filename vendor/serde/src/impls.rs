//! `Serialize` / `Deserialize` implementations for the standard types the
//! workspace serialises: primitives, strings, `Vec`, `Option`, maps with
//! integer or string keys, tuples, and `std::time::Duration`.

use crate::{Deserialize, Error, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;
use std::time::Duration;

macro_rules! impl_integer {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let text = value
                    .as_number()
                    .ok_or_else(|| Error::expected("number", stringify!($t)))?;
                text.parse().map_err(|_| {
                    Error::custom(format!(
                        "number `{text}` out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_integer!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                if self.is_finite() {
                    Value::Number(self.to_string())
                } else {
                    // JSON has no NaN / infinity literal; mirror JavaScript's
                    // JSON.stringify and emit null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                if value.is_null() {
                    // A non-finite float was serialised as null.
                    return Ok(<$t>::NAN);
                }
                let text = value
                    .as_number()
                    .ok_or_else(|| Error::expected("number", stringify!($t)))?;
                text.parse()
                    .map_err(|_| Error::custom(format!("malformed float `{text}`")))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("bool", "bool"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got `{s}`"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::deserialize(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N} elements, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::expected("array", "tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected} elements, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

/// Map keys must become JSON object keys (strings). Mirrors `serde_json`'s
/// behaviour of stringifying integer keys.
pub trait JsonKey: Sized {
    /// The key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses a JSON object key back.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_json_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse()
                    .map_err(|_| Error::custom(format!("invalid map key `{key}`")))
            }
        }
    )*};
}

impl_json_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: JsonKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::expected("object", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: JsonKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", "BTreeSet"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", "HashSet"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl Serialize for Duration {
    fn serialize(&self) -> Value {
        // Same shape as serde's built-in Duration impl: {"secs": u64, "nanos": u32}.
        Value::Object(vec![
            ("secs".to_owned(), self.as_secs().serialize()),
            ("nanos".to_owned(), self.subsec_nanos().serialize()),
        ])
    }
}

impl Deserialize for Duration {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let secs = u64::deserialize(
            value
                .get("secs")
                .ok_or_else(|| Error::missing_field("secs", "Duration"))?,
        )?;
        let nanos = u32::deserialize(
            value
                .get("nanos")
                .ok_or_else(|| Error::missing_field("nanos", "Duration"))?,
        )?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
