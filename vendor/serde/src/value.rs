//! The JSON data model used by the vendored serde stand-in.

/// A JSON value.
///
/// Numbers keep their literal JSON text so that integers up to `u64::MAX` and
/// floating-point values round-trip without precision loss (the text is parsed
/// with the destination type's own parser on conversion).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number, as its literal text (e.g. `"-12.5e3"`).
    Number(String),
    /// A JSON string.
    Str(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object. Insertion order is preserved; lookups scan linearly
    /// (objects here are small struct images).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The boolean payload, when this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, when this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The literal number text, when this is a `Number`.
    pub fn as_number(&self) -> Option<&str> {
        match self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    /// The elements, when this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entries, when this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a key, when this is an `Object`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// True when this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}
