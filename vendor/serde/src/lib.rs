//! Vendored stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships a
//! minimal replacement that preserves the import surface the code base uses —
//! `serde::{Serialize, Deserialize}` as both traits and derive macros — while
//! replacing serde's visitor architecture with a direct JSON-oriented data
//! model ([`Value`]). `serde_json` (also vendored) serialises any
//! [`Serialize`] type to JSON text and back.
//!
//! Numbers are carried as their literal JSON text ([`Value::Number`]) so that
//! every integer and floating-point type round-trips exactly: the text is
//! produced with Rust's shortest-roundtrip formatting and re-parsed with the
//! destination type's own parser.

pub use serde_derive::{Deserialize, Serialize};

mod error;
mod impls;
mod value;

pub use error::Error;
pub use value::Value;

/// A type that can be converted into the JSON data model.
///
/// Stand-in for `serde::Serialize`; implemented via `#[derive(Serialize)]`.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// A type that can be reconstructed from the JSON data model.
///
/// Stand-in for `serde::Deserialize`; implemented via `#[derive(Deserialize)]`.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}
