//! Vendored stand-in for the `rand 0.8` API generation.
//!
//! Only the surface the workspace uses is provided: [`RngCore`],
//! [`SeedableRng`] (with the SplitMix64-based `seed_from_u64`), the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`, `sample`, `fill`),
//! [`distributions::Uniform`] / [`distributions::Standard`], and
//! [`seq::SliceRandom`]. Streams are deterministic under a fixed seed but are
//! not bit-compatible with the upstream crates — the workspace only relies on
//! determinism and statistical quality, not on upstream parity.

pub mod distributions;
pub mod seq;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 (the
    /// same construction rand 0.8 uses, so distinct small seeds give
    /// uncorrelated states).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution (uniform `[0, 1)`
    /// for floats, full range for integers).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    /// Fills an integer slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weak LCG, good enough to exercise the trait plumbing.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            assert!(v < 10);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5..=6u32);
            assert!((5..=6).contains(&i));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }
}
