//! Slice utilities: Fisher–Yates shuffling and random element choice.

use crate::distributions::uniform::SampleRange;
use crate::RngCore;

/// Extension methods on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(42);
        let mut data: Vec<u32> = (0..100).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_respects_bounds() {
        let mut rng = Lcg(1);
        let data = [1, 2, 3];
        for _ in 0..100 {
            assert!(data.contains(data.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
