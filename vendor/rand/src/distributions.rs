//! Distributions: [`Standard`] and [`Uniform`], plus the sampling traits
//! backing `Rng::gen_range`.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution: uniform `[0, 1)` for floats, full range for
/// integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64
);

/// Uniform distribution over a fixed interval.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T: uniform::SampleUniform> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T: uniform::SampleUniform> Uniform<T> {
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        Self {
            low,
            high,
            inclusive: false,
        }
    }

    /// Uniform over `[low, high]`.
    pub fn new_inclusive(low: T, high: T) -> Self {
        Self {
            low,
            high,
            inclusive: true,
        }
    }
}

impl<T: uniform::SampleUniform + Copy> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_uniform(self.low, self.high, self.inclusive, rng)
    }
}

pub mod uniform {
    //! The traits backing `Rng::gen_range` and [`super::Uniform`].

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from an interval.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// Uniform draw from `[low, high)` (`inclusive` = false) or
        /// `[low, high]` (`inclusive` = true).
        fn sample_uniform<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    macro_rules! uniform_int {
        ($($t:ty as $wide:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    if inclusive {
                        assert!(low <= high, "gen_range: empty range");
                    } else {
                        assert!(low < high, "gen_range: empty range");
                    }
                    let span = (high as $wide).wrapping_sub(low as $wide);
                    let span = if inclusive { span.wrapping_add(1) } else { span };
                    if span == 0 {
                        // Inclusive full-range request: every value is valid.
                        return rng.next_u64() as $t;
                    }
                    // Modulo draw from 64 fresh bits: the bias is at most
                    // span / 2^64, far below anything the workspace's
                    // statistical tests can resolve.
                    let draw = rng.next_u64() % (span as u64);
                    ((low as $wide).wrapping_add(draw as $wide)) as $t
                }
            }
        )*};
    }

    uniform_int!(
        u8 as u64,
        u16 as u64,
        u32 as u64,
        u64 as u64,
        usize as u64,
        i8 as i64,
        i16 as i64,
        i32 as i64,
        i64 as i64,
        isize as i64
    );

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    assert!(low <= high, "gen_range: empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let sampled = (low as f64 + unit * (high as f64 - low as f64)) as $t;
                    // Floating rounding may land exactly on `high`; nudge back
                    // inside so the half-open contract holds.
                    if !inclusive && sampled >= high && low < high {
                        let bits = high.to_bits();
                        // The next float toward -inf: bits-1 for positives,
                        // bits+1 for negatives (and -min_positive below +0.0).
                        if high > 0.0 {
                            <$t>::from_bits(bits - 1)
                        } else if high < 0.0 {
                            <$t>::from_bits(bits + 1)
                        } else {
                            -<$t>::from_bits(1)
                        }
                    } else {
                        sampled
                    }
                }
            }
        )*};
    }

    uniform_float!(f32, f64);

    /// Ranges accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(*self.start(), *self.end(), true, rng)
        }
    }
}
